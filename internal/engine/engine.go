// Package engine is the shared marginal-gain oracle of the assignment
// algorithms. Every conference algorithm (internal/cra) and the journal
// branch-and-bound solver (internal/jra) spend almost all of their time
// evaluating the gain of Definition 8 — the score increase of merging one
// reviewer's expertise vector into a paper's running group vector. The
// generic path in internal/core materialises the merged vector and calls the
// configured ScoreFunc twice per evaluation; at paper scale (P×R profit
// matrices per SDGA stage) that is millions of allocations per stage.
//
// The Oracle removes both costs:
//
//   - It recognises the four scoring functions of the paper (weighted
//     coverage, reviewer coverage, paper coverage, dot-product) and computes
//     the merge gain in one fused, allocation-free pass over the topic
//     vectors, with the per-paper Sum denominators cached up front. Unknown
//     (custom) scoring functions fall back to the generic two-call path with
//     a pooled scratch vector, so correctness never depends on recognition.
//   - It builds flat, row-major profit matrices in parallel with a
//     GOMAXPROCS-sized worker pool and reusable buffers (see Matrix and
//     FillProfit in matrix.go).
//
// An Oracle is read-only with respect to its Instance and safe for
// concurrent use, provided the instance is not mutated while the oracle is
// alive (adding conflicts or changing the scoring function after New is not
// supported).
package engine

import (
	"reflect"
	"sync"

	"repro/internal/core"
)

// scoreKind identifies a recognised scoring function for the fused paths.
type scoreKind int

const (
	kindGeneric scoreKind = iota
	kindWeighted
	kindReviewer
	kindPaper
	kindDot
)

// classify maps a ScoreFunc to its fused kind by comparing the function's
// code pointer against the four implementations exported by internal/core. A
// nil function means the core default (weighted coverage); anything
// unrecognised gets the generic fallback.
func classify(fn core.ScoreFunc) scoreKind {
	if fn == nil {
		return kindWeighted
	}
	switch reflect.ValueOf(fn).Pointer() {
	case reflect.ValueOf(core.WeightedCoverage).Pointer():
		return kindWeighted
	case reflect.ValueOf(core.ReviewerCoverage).Pointer():
		return kindReviewer
	case reflect.ValueOf(core.PaperCoverage).Pointer():
		return kindPaper
	case reflect.ValueOf(core.DotProduct).Pointer():
		return kindDot
	}
	return kindGeneric
}

// Oracle evaluates scores and marginal gains for one instance.
type Oracle struct {
	in    *core.Instance
	kind  scoreKind
	score core.ScoreFunc
	// paperSum caches the scoring denominator sum_t p[t] of every paper.
	paperSum []float64
	// scratch pools T-dimensional vectors for the generic fallback and for
	// group-vector construction; entries are *core.Vector to keep Get/Put
	// allocation free.
	scratch sync.Pool
}

// New builds an oracle for the instance. The instance must not be mutated
// while the oracle is in use.
func New(in *core.Instance) *Oracle {
	o := &Oracle{
		in:       in,
		kind:     classify(in.Score),
		score:    in.ScoreFn(),
		paperSum: make([]float64, in.NumPapers()),
	}
	for p := range in.Papers {
		o.paperSum[p] = in.Papers[p].Topics.Sum()
	}
	t := in.NumTopics()
	o.scratch.New = func() interface{} {
		v := make(core.Vector, t)
		return &v
	}
	return o
}

// Instance returns the instance the oracle was built for.
func (o *Oracle) Instance() *core.Instance { return o.in }

// Score returns the coverage score of expertise vector g for paper p,
// equivalent to in.ScoreFn()(g, in.Papers[p].Topics) but with the paper
// denominator cached and the recognised functions fused.
func (o *Oracle) Score(g core.Vector, p int) float64 {
	paper := o.in.Papers[p].Topics
	den := o.paperSum[p]
	switch o.kind {
	case kindWeighted:
		if den == 0 {
			return 0
		}
		// Branchless accumulation (builtin min compiles to MINSD): the
		// per-topic branches of the generic path mispredict heavily on
		// real topic vectors.
		num := 0.0
		for t, pv := range paper {
			num += min(g[t], pv)
		}
		return num / den
	case kindReviewer:
		if den == 0 {
			return 0
		}
		num := 0.0
		for t, pv := range paper {
			if gv := g[t]; gv >= pv {
				num += gv
			}
		}
		return num / den
	case kindPaper:
		if den == 0 {
			return 0
		}
		num := 0.0
		for t, pv := range paper {
			if g[t] >= pv {
				num += pv
			}
		}
		return num / den
	case kindDot:
		if den == 0 {
			return 0
		}
		return core.Dot(g, paper) / den
	default:
		return o.score(g, paper)
	}
}

// PairScore returns c(r, p), the score of single reviewer r for paper p.
func (o *Oracle) PairScore(r, p int) float64 {
	return o.Score(o.in.Reviewers[r].Topics, p)
}

// Gain returns the marginal gain of merging reviewer r into group vector g
// for paper p (Definition 8), without modifying or materialising anything.
// For the four recognised scoring functions the gain is accumulated per
// topic in a single pass; only topics where the reviewer raises the group
// expertise contribute.
func (o *Oracle) Gain(p int, g core.Vector, r int) float64 {
	paper := o.in.Papers[p].Topics
	rv := o.in.Reviewers[r].Topics
	den := o.paperSum[p]
	switch o.kind {
	case kindWeighted:
		if den == 0 {
			return 0
		}
		// min distributes over max: min(max(g,x), p) − min(g, p) equals
		// max(0, min(x, p) − min(g, p)), so the whole pass is branchless.
		num := 0.0
		for t, pv := range paper {
			num += max(0, min(rv[t], pv)-min(g[t], pv))
		}
		return num / den
	case kindReviewer:
		if den == 0 {
			return 0
		}
		num := 0.0
		for t, pv := range paper {
			gv, x := g[t], rv[t]
			if x > gv {
				if x >= pv {
					num += x
				}
				if gv >= pv {
					num -= gv
				}
			}
		}
		return num / den
	case kindPaper:
		if den == 0 {
			return 0
		}
		num := 0.0
		for t, pv := range paper {
			gv, x := g[t], rv[t]
			if x > gv && x >= pv && gv < pv {
				num += pv
			}
		}
		return num / den
	case kindDot:
		if den == 0 {
			return 0
		}
		num := 0.0
		for t, pv := range paper {
			num += max(0, rv[t]-g[t]) * pv
		}
		return num / den
	default:
		return o.genericGain(paper, g, rv)
	}
}

// genericGain is the fallback for unrecognised scoring functions: the classic
// two-evaluation difference, with the merged vector drawn from the pool.
func (o *Oracle) genericGain(paper, g, rv core.Vector) float64 {
	vp := o.scratch.Get().(*core.Vector)
	merged := *vp
	copy(merged, g)
	merged.MaxInPlace(rv)
	gain := o.score(merged, paper) - o.score(g, paper)
	o.scratch.Put(vp)
	return gain
}

// GroupScore returns c(g, p) for the group of reviewer indices assigned to
// paper p, building the group vector in pooled scratch space.
func (o *Oracle) GroupScore(p int, group []int) float64 {
	vp := o.scratch.Get().(*core.Vector)
	g := *vp
	for i := range g {
		g[i] = 0
	}
	for _, r := range group {
		g.MaxInPlace(o.in.Reviewers[r].Topics)
	}
	s := o.Score(g, p)
	o.scratch.Put(vp)
	return s
}

// AssignmentScore computes the WGRAP objective of Definition 3 with the
// fused scoring path.
func (o *Oracle) AssignmentScore(a *core.Assignment) float64 {
	s := 0.0
	for p := range o.in.Papers {
		s += o.GroupScore(p, a.Groups[p])
	}
	return s
}

// PaperScores returns the per-paper coverage scores of the assignment.
func (o *Oracle) PaperScores(a *core.Assignment) []float64 {
	out := make([]float64, o.in.NumPapers())
	for p := range o.in.Papers {
		out[p] = o.GroupScore(p, a.Groups[p])
	}
	return out
}
