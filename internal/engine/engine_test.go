package engine

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
)

// randInstance builds a random conference instance with the given scoring
// function.
func randInstance(rng *rand.Rand, p, r, t int, score core.ScoreFunc) *core.Instance {
	papers := make([]core.Paper, p)
	for i := range papers {
		papers[i] = core.Paper{Topics: randVec(rng, t)}
	}
	reviewers := make([]core.Reviewer, r)
	for i := range reviewers {
		reviewers[i] = core.Reviewer{Topics: randVec(rng, t)}
	}
	in := core.NewInstance(papers, reviewers, 3, 0)
	in.Workload = in.MinWorkload()
	in.Score = score
	return in
}

func randVec(rng *rand.Rand, t int) core.Vector {
	v := make(core.Vector, t)
	for i := range v {
		v[i] = rng.Float64()
	}
	return v.Normalized()
}

// randGroupVec builds a partially filled group vector from a few random
// reviewers, so gains are exercised against non-trivial running groups.
func randGroupVec(rng *rand.Rand, in *core.Instance) core.Vector {
	g := make(core.Vector, in.NumTopics())
	for k := rng.Intn(3); k > 0; k-- {
		g.MaxInPlace(in.Reviewers[rng.Intn(in.NumReviewers())].Topics)
	}
	return g
}

// scoringTable lists the four paper scoring functions plus the nil default
// and an unrecognised custom function (which must hit the generic fallback).
func scoringTable() map[string]core.ScoreFunc {
	table := map[string]core.ScoreFunc{"nil-default": nil}
	for name, fn := range core.ScoringFunctions {
		table[name] = fn
	}
	// A custom function the oracle cannot recognise: squared coverage.
	table["custom-generic"] = func(g, p core.Vector) float64 {
		c := core.WeightedCoverage(g, p)
		return c * c
	}
	return table
}

// TestGainParity is the engine parity requirement: for every scoring
// function the fused gain must match core.Instance.GainWithVector to 1e-12
// on random instances.
func TestGainParity(t *testing.T) {
	for name, fn := range scoringTable() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			for trial := 0; trial < 20; trial++ {
				in := randInstance(rng, 1+rng.Intn(8), 3+rng.Intn(10), 1+rng.Intn(40), fn)
				o := New(in)
				for p := 0; p < in.NumPapers(); p++ {
					g := randGroupVec(rng, in)
					for r := 0; r < in.NumReviewers(); r++ {
						want := in.GainWithVector(p, g, r)
						got := o.Gain(p, g, r)
						if math.Abs(got-want) > 1e-12 {
							t.Fatalf("trial %d: gain(p=%d, r=%d) = %.17g, want %.17g", trial, p, r, got, want)
						}
					}
				}
			}
		})
	}
}

// TestScoreParity checks the fused Score, PairScore and GroupScore against
// the generic core paths.
func TestScoreParity(t *testing.T) {
	for name, fn := range scoringTable() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 20; trial++ {
				in := randInstance(rng, 1+rng.Intn(6), 3+rng.Intn(8), 1+rng.Intn(30), fn)
				o := New(in)
				score := in.ScoreFn()
				for p := 0; p < in.NumPapers(); p++ {
					g := randGroupVec(rng, in)
					if got, want := o.Score(g, p), score(g, in.Papers[p].Topics); math.Abs(got-want) > 1e-12 {
						t.Fatalf("Score(p=%d) = %g, want %g", p, got, want)
					}
					for r := 0; r < in.NumReviewers(); r++ {
						if got, want := o.PairScore(r, p), in.PairScore(r, p); math.Abs(got-want) > 1e-12 {
							t.Fatalf("PairScore(r=%d, p=%d) = %g, want %g", r, p, got, want)
						}
					}
					group := []int{rng.Intn(in.NumReviewers()), rng.Intn(in.NumReviewers())}
					if got, want := o.GroupScore(p, group), in.GroupScore(p, group); math.Abs(got-want) > 1e-12 {
						t.Fatalf("GroupScore(p=%d, %v) = %g, want %g", p, group, got, want)
					}
				}
			}
		})
	}
}

// TestAssignmentScoreParity checks the fused assignment scoring against the
// core implementation.
func TestAssignmentScoreParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := randInstance(rng, 12, 9, 20, nil)
	a := core.NewAssignment(in.NumPapers())
	for p := 0; p < in.NumPapers(); p++ {
		for k := 0; k < in.GroupSize; k++ {
			a.Assign(p, rng.Intn(in.NumReviewers()))
		}
	}
	o := New(in)
	if got, want := o.AssignmentScore(a), in.AssignmentScore(a); math.Abs(got-want) > 1e-12 {
		t.Fatalf("AssignmentScore = %g, want %g", got, want)
	}
	ps, want := o.PaperScores(a), in.PaperScores(a)
	for p := range ps {
		if math.Abs(ps[p]-want[p]) > 1e-12 {
			t.Fatalf("PaperScores[%d] = %g, want %g", p, ps[p], want[p])
		}
	}
}

// TestFillProfitParity compares the parallel flat-matrix build against a
// straightforward sequential build through the core gain path, including
// forbidden cells and a modular bonus.
func TestFillProfitParity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		in := randInstance(rng, 5+rng.Intn(40), 4+rng.Intn(30), 1+rng.Intn(25), nil)
		for k := 0; k < 10; k++ {
			in.AddConflict(rng.Intn(in.NumReviewers()), rng.Intn(in.NumPapers()))
		}
		groupVecs := make([]core.Vector, in.NumPapers())
		for p := range groupVecs {
			groupVecs[p] = randGroupVec(rng, in)
		}
		const forbidden = -1e18
		bonus := func(p, r int) float64 { return float64(p) * 0.001 }
		o := New(in)
		var m Matrix
		spec := ProfitSpec{
			GroupVecs:      groupVecs,
			Forbidden:      func(p, r int) bool { return in.IsConflict(r, p) },
			ForbiddenValue: forbidden,
			Bonus:          bonus,
			GainWeight:     2,
		}
		if err := o.FillProfit(context.Background(), &m, spec); err != nil {
			t.Fatal(err)
		}
		for p := 0; p < in.NumPapers(); p++ {
			for r := 0; r < in.NumReviewers(); r++ {
				want := forbidden
				if !in.IsConflict(r, p) {
					want = 2*in.GainWithVector(p, groupVecs[p], r) + bonus(p, r)
				}
				if math.Abs(m.At(p, r)-want) > 1e-12 {
					t.Fatalf("trial %d: cell (%d,%d) = %g, want %g", trial, p, r, m.At(p, r), want)
				}
			}
		}
	}
}

// TestFillPairScoresParity checks the pair-score convenience fill.
func TestFillPairScoresParity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := randInstance(rng, 17, 13, 15, core.DotProduct)
	o := New(in)
	var m Matrix
	if err := o.FillPairScores(context.Background(), &m); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < in.NumPapers(); p++ {
		for r := 0; r < in.NumReviewers(); r++ {
			if got, want := m.At(p, r), in.PairScore(r, p); math.Abs(got-want) > 1e-12 {
				t.Fatalf("cell (%d,%d) = %g, want %g", p, r, got, want)
			}
		}
	}
}

// TestMatrixReuse verifies Reset reuses the backing buffer and the row views
// stay consistent across shrinking and growing dimensions.
func TestMatrixReuse(t *testing.T) {
	var m Matrix
	m.Reset(4, 6)
	base := &m.data[0]
	m.Row(3)[5] = 42
	m.Reset(2, 3)
	if &m.data[0] != base {
		t.Fatal("shrinking Reset reallocated the buffer")
	}
	rows, cols := m.Dims()
	if rows != 2 || cols != 3 {
		t.Fatalf("Dims = (%d,%d), want (2,3)", rows, cols)
	}
	m.Row(1)[2] = 7
	if m.At(1, 2) != 7 {
		t.Fatal("row view does not alias the flat buffer")
	}
	if got := m.Rows(); len(got) != 2 || len(got[1]) != 3 {
		t.Fatalf("Rows() has shape %dx%d, want 2x3", len(got), len(got[1]))
	}
}

// TestFillProfitCancellation verifies a cancelled context aborts the build.
func TestFillProfitCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in := randInstance(rng, 50, 50, 10, nil)
	o := New(in)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var m Matrix
	if err := o.FillPairScores(ctx, &m); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestClassify pins the recognition of the four paper scoring functions.
func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		fn   core.ScoreFunc
		want scoreKind
	}{
		{"nil", nil, kindWeighted},
		{"weighted", core.WeightedCoverage, kindWeighted},
		{"reviewer", core.ReviewerCoverage, kindReviewer},
		{"paper", core.PaperCoverage, kindPaper},
		{"dot-product", core.DotProduct, kindDot},
		{"custom", func(g, p core.Vector) float64 { return 0 }, kindGeneric},
	}
	for _, c := range cases {
		if got := classify(c.fn); got != c.want {
			t.Errorf("classify(%s) = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestGainZeroDenominator covers papers with an all-zero topic vector, whose
// scores are defined as 0 for every scoring function.
func TestGainZeroDenominator(t *testing.T) {
	for name, fn := range scoringTable() {
		in := &core.Instance{
			Papers:    []core.Paper{{Topics: core.Vector{0, 0, 0}}},
			Reviewers: []core.Reviewer{{Topics: core.Vector{0.5, 0.3, 0.2}}},
			GroupSize: 1, Workload: 1, Score: fn,
		}
		o := New(in)
		g := core.Vector{0.1, 0, 0}
		if got, want := o.Gain(0, g, 0), in.GainWithVector(0, g, 0); math.Abs(got-want) > 1e-12 {
			t.Errorf("%s: zero-denominator gain = %g, want %g", name, got, want)
		}
	}
}

// TestFillProfitConcurrentDeterminism re-fills the same spec many times and
// requires bit-identical results, guarding against data races on the shared
// buffers (run with -race).
func TestFillProfitConcurrentDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	in := randInstance(rng, 60, 40, 12, nil)
	groupVecs := make([]core.Vector, in.NumPapers())
	for p := range groupVecs {
		groupVecs[p] = randGroupVec(rng, in)
	}
	o := New(in)
	var first []float64
	for round := 0; round < 5; round++ {
		var m Matrix
		if err := o.FillProfit(context.Background(), &m, ProfitSpec{GroupVecs: groupVecs}); err != nil {
			t.Fatal(err)
		}
		flat := append([]float64(nil), m.data...)
		if round == 0 {
			first = flat
			continue
		}
		for i := range flat {
			if flat[i] != first[i] {
				t.Fatalf("round %d: cell %d differs: %g vs %g", round, i, flat[i], first[i])
			}
		}
	}
	// Sanity: the fill visited every row (no forbidden cells, scores > 0
	// somewhere in each row for these dense random vectors).
	var m Matrix
	if err := o.FillProfit(context.Background(), &m, ProfitSpec{GroupVecs: groupVecs}); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < in.NumPapers(); p++ {
		row := append([]float64(nil), m.Row(p)...)
		sort.Float64s(row)
		if row[len(row)-1] < 0 {
			t.Fatalf("row %d looks unfilled", p)
		}
	}
}

// TestFillProfitRows: refilling a subset of rows after a spec change must
// leave every other row untouched and make the dirty rows identical to a
// full rebuild with the new spec.
func TestFillProfitRows(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	in := randInstance(rng, 50, 30, 10, nil)
	groupVecs := make([]core.Vector, in.NumPapers())
	for p := range groupVecs {
		groupVecs[p] = randGroupVec(rng, in)
	}
	o := New(in)
	var m Matrix
	spec := ProfitSpec{GroupVecs: groupVecs}
	if err := o.FillProfit(context.Background(), &m, spec); err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), m.data...)

	// Edit: two papers' group vectors change, one pair becomes forbidden.
	dirty := []int{7, 23}
	for _, p := range dirty {
		groupVecs[p] = randGroupVec(rng, in)
	}
	spec.Forbidden = func(p, r int) bool { return p == 7 && r == 3 }
	spec.ForbiddenValue = math.Inf(-1)
	if err := o.FillProfitRows(context.Background(), &m, spec, dirty); err != nil {
		t.Fatal(err)
	}

	var full Matrix
	if err := o.FillProfit(context.Background(), &full, spec); err != nil {
		t.Fatal(err)
	}
	isDirty := map[int]bool{7: true, 23: true}
	for p := 0; p < in.NumPapers(); p++ {
		for r := 0; r < in.NumReviewers(); r++ {
			got := m.At(p, r)
			if isDirty[p] {
				if got != full.At(p, r) {
					t.Fatalf("dirty row %d col %d: %g, want %g", p, r, got, full.At(p, r))
				}
			} else if got != before[p*in.NumReviewers()+r] {
				t.Fatalf("clean row %d col %d changed: %g vs %g", p, r, got, before[p*in.NumReviewers()+r])
			}
		}
	}

	// Dimension guard: a matrix that was never filled at the instance shape
	// must be rejected rather than silently resized.
	var stale Matrix
	stale.Reset(2, 2)
	if err := o.FillProfitRows(context.Background(), &stale, spec, dirty); err == nil {
		t.Fatal("stale-dimension matrix accepted")
	}
}
