package engine

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// randCandidates draws a sorted, duplicate-free candidate list of size k per
// paper.
func randCandidates(rng *rand.Rand, papers, reviewers, k int) [][]int32 {
	cands := make([][]int32, papers)
	for p := range cands {
		perm := rng.Perm(reviewers)[:k]
		c := make([]int32, k)
		for i, r := range perm {
			c[i] = int32(r)
		}
		for i := 1; i < len(c); i++ {
			for j := i; j > 0 && c[j] < c[j-1]; j-- {
				c[j], c[j-1] = c[j-1], c[j]
			}
		}
		cands[p] = c
	}
	return cands
}

// TestFillProfitSparseMatchesDense: every candidate cell of the sparse fill
// must be bit-identical to the corresponding cell of the dense fill, for a
// spec exercising group vectors, forbidden pairs and a bonus term.
func TestFillProfitSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := randInstance(rng, 40, 80, 16, nil)
	o := New(in)
	groupVecs := make([]core.Vector, in.NumPapers())
	for p := range groupVecs {
		groupVecs[p] = randGroupVec(rng, in)
	}
	spec := ProfitSpec{
		GroupVecs:      groupVecs,
		Forbidden:      func(p, r int) bool { return (p+r)%7 == 0 },
		ForbiddenValue: -1e30,
		Bonus:          func(p, r int) float64 { return float64(p*r) * 1e-6 },
	}
	var dense, sparse Matrix
	if err := o.FillProfit(context.Background(), &dense, spec); err != nil {
		t.Fatal(err)
	}
	cands := randCandidates(rng, in.NumPapers(), in.NumReviewers(), 12)
	if err := o.FillProfitSparse(context.Background(), &sparse, spec, cands); err != nil {
		t.Fatal(err)
	}
	if !sparse.Sparse() || dense.Sparse() {
		t.Fatalf("layout flags wrong: sparse=%v dense=%v", sparse.Sparse(), dense.Sparse())
	}
	for p := 0; p < in.NumPapers(); p++ {
		row := sparse.Row(p)
		if len(row) != len(cands[p]) {
			t.Fatalf("paper %d: sparse row has %d cells, want %d", p, len(row), len(cands[p]))
		}
		for x, r := range cands[p] {
			if row[x] != dense.At(p, int(r)) {
				t.Fatalf("paper %d cand %d (reviewer %d): sparse %v != dense %v",
					p, x, r, row[x], dense.At(p, int(r)))
			}
		}
	}

	// FillRowInto must reproduce the dense rows exactly (it is the
	// densification callback of the sparse transport path).
	buf := make([]float64, in.NumReviewers())
	for p := 0; p < in.NumPapers(); p += 7 {
		o.FillRowInto(buf, p, spec)
		for r, v := range buf {
			if v != dense.At(p, r) {
				t.Fatalf("FillRowInto paper %d reviewer %d: %v != %v", p, r, v, dense.At(p, r))
			}
		}
	}
}

// TestFillProfitRowsSparse: the dirty-row refill on a sparse matrix must
// update exactly the dirty rows' candidate cells and match a fresh sparse
// build of the new spec.
func TestFillProfitRowsSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in := randInstance(rng, 30, 60, 12, nil)
	o := New(in)
	cands := randCandidates(rng, in.NumPapers(), in.NumReviewers(), 10)
	groupVecs := make([]core.Vector, in.NumPapers())
	for p := range groupVecs {
		groupVecs[p] = make(core.Vector, in.NumTopics())
	}
	spec := ProfitSpec{GroupVecs: groupVecs, ForbiddenValue: -1e30}
	var m Matrix
	if err := o.FillProfitSparse(context.Background(), &m, spec, cands); err != nil {
		t.Fatal(err)
	}
	// Edit two papers' group vectors and refill just those rows.
	dirty := []int{3, 17}
	for _, p := range dirty {
		groupVecs[p].MaxInPlace(in.Reviewers[p].Topics)
	}
	if err := o.FillProfitRows(context.Background(), &m, spec, dirty); err != nil {
		t.Fatal(err)
	}
	var fresh Matrix
	if err := o.FillProfitSparse(context.Background(), &fresh, spec, cands); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < in.NumPapers(); p++ {
		got, want := m.Row(p), fresh.Row(p)
		for x := range want {
			if got[x] != want[x] {
				t.Fatalf("paper %d cell %d: refill %v != fresh %v", p, x, got[x], want[x])
			}
		}
	}
}
