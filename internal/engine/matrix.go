package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Matrix is a flat, row-major profit matrix with cached per-row views. The
// zero value is ready to use; Reset reuses the backing buffer across solver
// invocations (SDGA rebuilds the matrix every stage, SRA every round), so a
// steady-state fill performs no allocation.
//
// A Matrix has two layouts. In the dense layout (Reset) row p holds one cell
// per column. In the sparse-row layout (ResetSparse) row p holds one cell per
// entry of its candidate list, in candidate order: Row(p)[x] is the profit of
// pairing p with candidate cand[p][x]. The sparse layout is what the
// candidate-pruned solve path hands to flow.Transport.SolveSparse, keeping
// every downstream pass O(P·k) instead of O(P·R).
type Matrix struct {
	rows, cols int
	data       []float64
	views      [][]float64
	// cand, when non-nil, holds the per-row candidate column lists of the
	// sparse-row layout (ascending; owned by the caller and only read here).
	cand [][]int32
}

// Reset resizes the matrix to the dense rows×cols layout, reusing the backing
// storage when it is large enough. Cell contents are unspecified after Reset;
// fills overwrite every cell.
func (m *Matrix) Reset(rows, cols int) {
	n := rows * cols
	if cap(m.data) < n {
		m.data = make([]float64, n)
	} else {
		m.data = m.data[:n]
	}
	if cap(m.views) < rows {
		m.views = make([][]float64, rows)
	} else {
		m.views = m.views[:rows]
	}
	for p := 0; p < rows; p++ {
		m.views[p] = m.data[p*cols : (p+1)*cols : (p+1)*cols]
	}
	m.rows, m.cols = rows, cols
	m.cand = nil
}

// ResetSparse resizes the matrix to the sparse-row layout: logically
// rows×cols, but row p physically holds len(cand[p]) cells, one per
// candidate column. cand is retained (not copied) and must stay immutable
// while the matrix is in use.
func (m *Matrix) ResetSparse(rows, cols int, cand [][]int32) {
	total := 0
	for _, c := range cand {
		total += len(c)
	}
	if cap(m.data) < total {
		m.data = make([]float64, total)
	} else {
		m.data = m.data[:total]
	}
	if cap(m.views) < rows {
		m.views = make([][]float64, rows)
	} else {
		m.views = m.views[:rows]
	}
	off := 0
	for p := 0; p < rows; p++ {
		end := off + len(cand[p])
		m.views[p] = m.data[off:end:end]
		off = end
	}
	m.rows, m.cols = rows, cols
	m.cand = cand
}

// Dims returns the current logical (rows, cols).
func (m *Matrix) Dims() (int, int) { return m.rows, m.cols }

// Sparse reports whether the matrix is in the sparse-row layout.
func (m *Matrix) Sparse() bool { return m.cand != nil }

// At returns the cell (p, r) of a dense-layout matrix. In the sparse-row
// layout cells are addressed by candidate position via Row instead.
func (m *Matrix) At(p, r int) float64 { return m.views[p][r] }

// Row returns row p as a slice view into the flat buffer: one cell per
// column in the dense layout, one per candidate in the sparse-row layout.
func (m *Matrix) Row(p int) []float64 { return m.views[p] }

// Rows returns all row views; the result aliases the flat buffer and can be
// handed directly to the [][]float64-based solvers (flow, lap) without
// copying.
func (m *Matrix) Rows() [][]float64 { return m.views }

// ProfitSpec describes one profit-matrix build. Cell (p, r) receives the
// marginal gain of adding reviewer r to paper p's current group (or the
// plain pair score when GroupVecs is nil), unless the pair is forbidden.
//
// Forbidden and Bonus are invoked concurrently from the worker pool and must
// be safe for concurrent use; in practice they only read solver state that
// is frozen during the build.
type ProfitSpec struct {
	// GroupVecs[p] is paper p's current group expertise vector. A nil slice
	// means the empty group for every paper, i.e. cells hold pair scores.
	GroupVecs []core.Vector
	// Forbidden reports pairs that must never be assigned (conflicts of
	// interest, exhausted capacity, already-assigned pairs); their cells are
	// set to ForbiddenValue instead of a gain.
	Forbidden func(p, r int) bool
	// ForbiddenValue is the sentinel stored in forbidden cells (callers pass
	// the marker their downstream solver expects, e.g. flow.Forbidden).
	ForbiddenValue float64
	// Bonus optionally adds a modular per-pair term to the gain (e.g.
	// reviewer bids). When set, the cell is GainWeight·gain + Bonus(p, r).
	Bonus func(p, r int) float64
	// GainWeight scales the coverage gain when a Bonus is supplied
	// (0 means 1, i.e. plain coverage).
	GainWeight float64
}

// Fill tiling: cells are produced in rowBlock×colBlock tiles so the
// colBlock reviewer vectors stay cache-resident while a block of papers is
// scored against them. An untiled fill re-streams the entire reviewer pool
// (R·T·8 bytes) for every paper and becomes memory-bound at paper scale.
const (
	fillRowBlock = 64
	fillColBlock = 128
)

// profitCell computes the value of cell (p, r) per spec — the single
// definition of the profit-cell semantics, shared by the dense tiled build,
// the sparse candidate build and the dirty-row refills so none of them can
// drift apart. gv is the paper's group vector (nil for pair scores), w the
// resolved gain weight.
func (o *Oracle) profitCell(p, r int, gv core.Vector, spec *ProfitSpec, w float64) float64 {
	if spec.Forbidden != nil && spec.Forbidden(p, r) {
		return spec.ForbiddenValue
	}
	var gain float64
	if gv == nil {
		gain = o.PairScore(r, p)
	} else {
		gain = o.Gain(p, gv, r)
	}
	if spec.Bonus != nil {
		gain = w*gain + spec.Bonus(p, r)
	}
	return gain
}

// fillRowCells computes the dense cells [c0, c1) of row p per spec.
func (o *Oracle) fillRowCells(row []float64, p, c0, c1 int, spec *ProfitSpec, w float64) {
	var gv core.Vector
	if spec.GroupVecs != nil {
		gv = spec.GroupVecs[p]
	}
	for r := c0; r < c1; r++ {
		row[r] = o.profitCell(p, r, gv, spec, w)
	}
}

// fillRowCellsSparse computes the candidate cells of sparse row p per spec:
// row[x] receives the profit of pairing p with candidate cand[x].
func (o *Oracle) fillRowCellsSparse(row []float64, p int, cand []int32, spec *ProfitSpec, w float64) {
	var gv core.Vector
	if spec.GroupVecs != nil {
		gv = spec.GroupVecs[p]
	}
	for x, r := range cand {
		row[x] = o.profitCell(p, int(r), gv, spec, w)
	}
}

// FillRowInto fills one full-width profit row for paper p into row (len R),
// per spec. It is the densification callback of the sparse solve path:
// flow.Transport widens a row to full width when its candidate set saturates,
// and needs the row's dense profits on demand without a Matrix rebuild.
func (o *Oracle) FillRowInto(row []float64, p int, spec ProfitSpec) {
	w := spec.GainWeight
	if w == 0 {
		w = 1
	}
	o.fillRowCells(row, p, 0, len(row), &spec, w)
}

// FillProfit builds the P×R profit matrix described by spec into m. Tiles of
// rows are filled in parallel with a GOMAXPROCS-sized worker pool. It
// returns ctx.Err() if the context is cancelled mid-build (the matrix
// contents are then unspecified).
func (o *Oracle) FillProfit(ctx context.Context, m *Matrix, spec ProfitSpec) error {
	P, R := o.in.NumPapers(), o.in.NumReviewers()
	m.Reset(P, R)
	w := spec.GainWeight
	if w == 0 {
		w = 1
	}
	blocks := (P + fillRowBlock - 1) / fillRowBlock
	return parallelUnits(ctx, blocks, func(b int) {
		p0 := b * fillRowBlock
		p1 := p0 + fillRowBlock
		if p1 > P {
			p1 = P
		}
		for c0 := 0; c0 < R; c0 += fillColBlock {
			c1 := c0 + fillColBlock
			if c1 > R {
				c1 = R
			}
			for p := p0; p < p1; p++ {
				o.fillRowCells(m.views[p], p, c0, c1, &spec, w)
			}
		}
	})
}

// FillProfitSparse builds the sparse-row profit matrix described by spec
// into m: row p receives one cell per entry of cand[p] (its candidate
// reviewers, ascending), so the build costs O(P·k·T) instead of O(P·R·T).
// Blocks of rows are filled in parallel as in FillProfit. cand is retained
// by the matrix (see Matrix.ResetSparse).
func (o *Oracle) FillProfitSparse(ctx context.Context, m *Matrix, spec ProfitSpec, cand [][]int32) error {
	P, R := o.in.NumPapers(), o.in.NumReviewers()
	if len(cand) != P {
		return errors.New("engine: FillProfitSparse candidate lists do not cover the papers")
	}
	m.ResetSparse(P, R, cand)
	w := spec.GainWeight
	if w == 0 {
		w = 1
	}
	blocks := (P + fillRowBlock - 1) / fillRowBlock
	return parallelUnits(ctx, blocks, func(b int) {
		p0 := b * fillRowBlock
		p1 := p0 + fillRowBlock
		if p1 > P {
			p1 = P
		}
		for p := p0; p < p1; p++ {
			o.fillRowCellsSparse(m.views[p], p, cand[p], &spec, w)
		}
	})
}

// FillProfitRows rebuilds only the given rows of a previously filled profit
// matrix (the dirty-row refill of session warm re-solves: after a small
// instance edit most papers' gains are unchanged, so refilling the handful
// of dirty rows replaces an O(P·R·T) full build with an O(|rows|·R·T) one).
// m must already hold a P×R fill — dense or sparse-row; a sparse matrix
// refills only the dirty rows' candidate cells. The untouched rows keep
// their contents.
func (o *Oracle) FillProfitRows(ctx context.Context, m *Matrix, spec ProfitSpec, rows []int) error {
	P, R := o.in.NumPapers(), o.in.NumReviewers()
	if m.rows != P || m.cols != R {
		return errors.New("engine: FillProfitRows on a matrix with stale dimensions")
	}
	w := spec.GainWeight
	if w == 0 {
		w = 1
	}
	if m.cand != nil {
		return parallelUnits(ctx, len(rows), func(u int) {
			p := rows[u]
			o.fillRowCellsSparse(m.views[p], p, m.cand[p], &spec, w)
		})
	}
	return parallelUnits(ctx, len(rows), func(u int) {
		p := rows[u]
		o.fillRowCells(m.views[p], p, 0, R, &spec, w)
	})
}

// FillPairScores builds the P×R matrix of pair scores c(r, p) into m in
// parallel (the precomputation of SRA's probability model and the stable
// matching preference lists).
func (o *Oracle) FillPairScores(ctx context.Context, m *Matrix) error {
	return o.FillProfit(ctx, m, ProfitSpec{})
}

// parallelUnits runs work(u) for every unit in [0, units) across a
// GOMAXPROCS-sized worker pool, checking ctx between units. Units are handed
// out with an atomic counter so uneven unit costs still balance.
func parallelUnits(ctx context.Context, units int, work func(u int)) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > units {
		workers = units
	}
	if workers <= 1 {
		for u := 0; u < units; u++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			work(u)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for {
				u := int(next.Add(1)) - 1
				if u >= units || ctx.Err() != nil {
					return
				}
				work(u)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
