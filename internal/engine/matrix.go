package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Matrix is a flat, row-major profit matrix with cached per-row views. The
// zero value is ready to use; Reset reuses the backing buffer across solver
// invocations (SDGA rebuilds the matrix every stage, SRA every round), so a
// steady-state fill performs no allocation.
type Matrix struct {
	rows, cols int
	data       []float64
	views      [][]float64
}

// Reset resizes the matrix to rows×cols, reusing the backing storage when it
// is large enough. Cell contents are unspecified after Reset; fills overwrite
// every cell.
func (m *Matrix) Reset(rows, cols int) {
	n := rows * cols
	if cap(m.data) < n {
		m.data = make([]float64, n)
	} else {
		m.data = m.data[:n]
	}
	if cap(m.views) < rows {
		m.views = make([][]float64, rows)
	} else {
		m.views = m.views[:rows]
	}
	for p := 0; p < rows; p++ {
		m.views[p] = m.data[p*cols : (p+1)*cols : (p+1)*cols]
	}
	m.rows, m.cols = rows, cols
}

// Dims returns the current (rows, cols).
func (m *Matrix) Dims() (int, int) { return m.rows, m.cols }

// At returns the cell (p, r).
func (m *Matrix) At(p, r int) float64 { return m.views[p][r] }

// Row returns row p as a slice view into the flat buffer.
func (m *Matrix) Row(p int) []float64 { return m.views[p] }

// Rows returns all row views; the result aliases the flat buffer and can be
// handed directly to the [][]float64-based solvers (flow, lap) without
// copying.
func (m *Matrix) Rows() [][]float64 { return m.views }

// ProfitSpec describes one profit-matrix build. Cell (p, r) receives the
// marginal gain of adding reviewer r to paper p's current group (or the
// plain pair score when GroupVecs is nil), unless the pair is forbidden.
//
// Forbidden and Bonus are invoked concurrently from the worker pool and must
// be safe for concurrent use; in practice they only read solver state that
// is frozen during the build.
type ProfitSpec struct {
	// GroupVecs[p] is paper p's current group expertise vector. A nil slice
	// means the empty group for every paper, i.e. cells hold pair scores.
	GroupVecs []core.Vector
	// Forbidden reports pairs that must never be assigned (conflicts of
	// interest, exhausted capacity, already-assigned pairs); their cells are
	// set to ForbiddenValue instead of a gain.
	Forbidden func(p, r int) bool
	// ForbiddenValue is the sentinel stored in forbidden cells (callers pass
	// the marker their downstream solver expects, e.g. flow.Forbidden).
	ForbiddenValue float64
	// Bonus optionally adds a modular per-pair term to the gain (e.g.
	// reviewer bids). When set, the cell is GainWeight·gain + Bonus(p, r).
	Bonus func(p, r int) float64
	// GainWeight scales the coverage gain when a Bonus is supplied
	// (0 means 1, i.e. plain coverage).
	GainWeight float64
}

// Fill tiling: cells are produced in rowBlock×colBlock tiles so the
// colBlock reviewer vectors stay cache-resident while a block of papers is
// scored against them. An untiled fill re-streams the entire reviewer pool
// (R·T·8 bytes) for every paper and becomes memory-bound at paper scale.
const (
	fillRowBlock = 64
	fillColBlock = 128
)

// fillRowCells computes the cells [c0, c1) of row p per spec — the single
// definition of the profit-cell semantics, shared by the full tiled build
// and the dirty-row refill so the two can never drift apart. w is the
// resolved gain weight.
func (o *Oracle) fillRowCells(row []float64, p, c0, c1 int, spec *ProfitSpec, w float64) {
	var gv core.Vector
	if spec.GroupVecs != nil {
		gv = spec.GroupVecs[p]
	}
	for r := c0; r < c1; r++ {
		if spec.Forbidden != nil && spec.Forbidden(p, r) {
			row[r] = spec.ForbiddenValue
			continue
		}
		var gain float64
		if gv == nil {
			gain = o.PairScore(r, p)
		} else {
			gain = o.Gain(p, gv, r)
		}
		if spec.Bonus != nil {
			gain = w*gain + spec.Bonus(p, r)
		}
		row[r] = gain
	}
}

// FillProfit builds the P×R profit matrix described by spec into m. Tiles of
// rows are filled in parallel with a GOMAXPROCS-sized worker pool. It
// returns ctx.Err() if the context is cancelled mid-build (the matrix
// contents are then unspecified).
func (o *Oracle) FillProfit(ctx context.Context, m *Matrix, spec ProfitSpec) error {
	P, R := o.in.NumPapers(), o.in.NumReviewers()
	m.Reset(P, R)
	w := spec.GainWeight
	if w == 0 {
		w = 1
	}
	blocks := (P + fillRowBlock - 1) / fillRowBlock
	return parallelUnits(ctx, blocks, func(b int) {
		p0 := b * fillRowBlock
		p1 := p0 + fillRowBlock
		if p1 > P {
			p1 = P
		}
		for c0 := 0; c0 < R; c0 += fillColBlock {
			c1 := c0 + fillColBlock
			if c1 > R {
				c1 = R
			}
			for p := p0; p < p1; p++ {
				o.fillRowCells(m.views[p], p, c0, c1, &spec, w)
			}
		}
	})
}

// FillProfitRows rebuilds only the given rows of a previously filled profit
// matrix (the dirty-row refill of session warm re-solves: after a small
// instance edit most papers' gains are unchanged, so refilling the handful
// of dirty rows replaces an O(P·R·T) full build with an O(|rows|·R·T) one).
// m must already hold a P×R fill; the untouched rows keep their contents.
func (o *Oracle) FillProfitRows(ctx context.Context, m *Matrix, spec ProfitSpec, rows []int) error {
	P, R := o.in.NumPapers(), o.in.NumReviewers()
	if m.rows != P || m.cols != R {
		return errors.New("engine: FillProfitRows on a matrix with stale dimensions")
	}
	w := spec.GainWeight
	if w == 0 {
		w = 1
	}
	return parallelUnits(ctx, len(rows), func(u int) {
		p := rows[u]
		o.fillRowCells(m.views[p], p, 0, R, &spec, w)
	})
}

// FillPairScores builds the P×R matrix of pair scores c(r, p) into m in
// parallel (the precomputation of SRA's probability model and the stable
// matching preference lists).
func (o *Oracle) FillPairScores(ctx context.Context, m *Matrix) error {
	return o.FillProfit(ctx, m, ProfitSpec{})
}

// parallelUnits runs work(u) for every unit in [0, units) across a
// GOMAXPROCS-sized worker pool, checking ctx between units. Units are handed
// out with an atomic counter so uneven unit costs still balance.
func parallelUnits(ctx context.Context, units int, work func(u int)) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > units {
		workers = units
	}
	if workers <= 1 {
		for u := 0; u < units; u++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			work(u)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for {
				u := int(next.Add(1)) - 1
				if u >= units || ctx.Err() != nil {
					return
				}
				work(u)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
