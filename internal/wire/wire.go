// Package wire defines the JSON payloads shared by the wgrap-serve HTTP API
// and the repro/client package: instances, edits, results, views, progress
// snapshots, tenant configuration and the error envelope. Keeping both ends
// on one set of types is what makes the embedded↔remote duality exact — a
// value that round-trips through this package means the same thing to an
// in-process Solver and to a server across the network.
//
// The package depends only on internal/core so that every layer (the public
// wgrap package, the durability layer, the server, the client) can import it
// without cycles.
package wire

import (
	"fmt"

	"repro/internal/core"
)

// Paper is the wire form of core.Paper.
type Paper struct {
	ID     string    `json:"id,omitempty"`
	Title  string    `json:"title,omitempty"`
	Topics []float64 `json:"topics"`
}

// Reviewer is the wire form of core.Reviewer.
type Reviewer struct {
	ID     string    `json:"id,omitempty"`
	Name   string    `json:"name,omitempty"`
	HIndex int       `json:"h_index,omitempty"`
	Topics []float64 `json:"topics"`
}

// Instance is the wire form of a WGRAP instance. Score names one of the
// package's named scoring functions (core.ScoreByName); empty means the
// default weighted coverage.
type Instance struct {
	GroupSize int        `json:"group_size"`
	Workload  int        `json:"workload"`
	Score     string     `json:"score,omitempty"`
	Papers    []Paper    `json:"papers"`
	Reviewers []Reviewer `json:"reviewers"`
	// Conflicts lists [reviewer, paper] index pairs.
	Conflicts [][2]int `json:"conflicts,omitempty"`
}

// FromInstance converts a core instance to its wire form. It fails when the
// instance uses a custom (unnamed) scoring function, which cannot travel.
func FromInstance(in *core.Instance) (*Instance, error) {
	name, ok := core.ScoreName(in.Score)
	if !ok {
		return nil, fmt.Errorf("wire: instance uses an unnamed scoring function; only the named core scoring functions serialize")
	}
	w := &Instance{
		GroupSize: in.GroupSize,
		Workload:  in.Workload,
		Score:     name,
		Papers:    make([]Paper, 0, in.NumPapers()),
		Reviewers: make([]Reviewer, 0, in.NumReviewers()),
	}
	for _, p := range in.Papers {
		w.Papers = append(w.Papers, Paper{ID: p.ID, Title: p.Title, Topics: p.Topics})
	}
	for _, r := range in.Reviewers {
		w.Reviewers = append(w.Reviewers, Reviewer{ID: r.ID, Name: r.Name, HIndex: r.HIndex, Topics: r.Topics})
	}
	for _, c := range in.Conflicts() {
		w.Conflicts = append(w.Conflicts, [2]int{c.Reviewer, c.Paper})
	}
	return w, nil
}

// ToInstance converts the wire form back to a core instance.
func (w *Instance) ToInstance() (*core.Instance, error) {
	fn, ok := core.ScoreByName(w.Score)
	if !ok {
		return nil, fmt.Errorf("wire: unknown scoring function %q", w.Score)
	}
	papers := make([]core.Paper, 0, len(w.Papers))
	for _, p := range w.Papers {
		papers = append(papers, core.Paper{ID: p.ID, Title: p.Title, Topics: p.Topics})
	}
	reviewers := make([]core.Reviewer, 0, len(w.Reviewers))
	for _, r := range w.Reviewers {
		reviewers = append(reviewers, core.Reviewer{ID: r.ID, Name: r.Name, HIndex: r.HIndex, Topics: r.Topics})
	}
	in := core.NewInstance(papers, reviewers, w.GroupSize, w.Workload)
	in.Score = fn
	for _, c := range w.Conflicts {
		in.AddConflict(c[0], c[1])
	}
	return in, nil
}

// Edit operations, matching the Solver's incremental mutators.
const (
	OpAddConflict = "add-conflict"
	OpWithdraw    = "withdraw-paper"
	OpRestore     = "restore-paper"
	OpAddReviewer = "add-reviewer"
	OpSetWorkload = "set-workload"
)

// Edit is one incremental session edit.
type Edit struct {
	Op       string    `json:"op"`
	R        int       `json:"r,omitempty"`
	P        int       `json:"p,omitempty"`
	Workload int       `json:"workload,omitempty"`
	Reviewer *Reviewer `json:"reviewer,omitempty"`
}

// EditRequest is the body of POST /v1/tenants/{id}/edits: a batch applied
// in order.
type EditRequest struct {
	Edits []Edit `json:"edits"`
}

// EditResponse acknowledges an accepted edit batch. ReviewerIndices holds
// the assigned pool index of each add-reviewer edit, in batch order. Seq is
// the tenant's accepted-edit sequence after the batch; a cluster-aware
// client uses it to compute how much of a batch survived when the owner
// node dies between accepting edits and acknowledging them.
type EditResponse struct {
	Accepted        int    `json:"accepted"`
	Seq             uint64 `json:"seq,omitempty"`
	ReviewerIndices []int  `json:"reviewer_indices,omitempty"`
}

// Result is the wire form of a completed solve.
type Result struct {
	Score           float64 `json:"score"`
	AverageCoverage float64 `json:"average_coverage"`
	LowestCoverage  float64 `json:"lowest_coverage"`
	ElapsedNS       int64   `json:"elapsed_ns"`
	Method          string  `json:"method"`
	Groups          [][]int `json:"groups"`
}

// View is the wire form of a published solver view.
type View struct {
	Version    uint64  `json:"version"`
	Warm       bool    `json:"warm"`
	Edits      int     `json:"edits"`
	WhenUnixNS int64   `json:"when_unix_ns"`
	Result     *Result `json:"result,omitempty"`
}

// Progress is the wire form of one anytime progress snapshot. The best
// assignment is deliberately omitted — progress streams carry metrics, the
// view endpoint carries assignments.
type Progress struct {
	Phase     string  `json:"phase"`
	Round     int     `json:"round"`
	Score     float64 `json:"score"`
	ElapsedNS int64   `json:"elapsed_ns"`
}

// TenantConfig is the serializable solver configuration of one tenant; it
// is stored beside the tenant's durable state so a restarted server rebuilds
// the session with identical options. Zero values keep the library defaults.
type TenantConfig struct {
	Method           string `json:"method,omitempty"`
	Omega            int    `json:"omega,omitempty"`
	Seed             int64  `json:"seed,omitempty"`
	RefinementBudget int64  `json:"refinement_budget_ns,omitempty"`
	Shards           int    `json:"shards,omitempty"`
	CandidateCap     int    `json:"candidate_cap,omitempty"`
	// SnapshotEvery is the durable compaction threshold (journal records
	// between snapshots); FsyncIntervalNS the group-commit window (negative:
	// fsync every record).
	SnapshotEvery   int   `json:"snapshot_every,omitempty"`
	FsyncIntervalNS int64 `json:"fsync_interval_ns,omitempty"`
}

// CreateRequest is the body of POST /v1/tenants.
type CreateRequest struct {
	ID       string       `json:"id"`
	Instance *Instance    `json:"instance"`
	Config   TenantConfig `json:"config"`
}

// Status describes one tenant.
type Status struct {
	ID        string `json:"id"`
	Papers    int    `json:"papers"`
	Reviewers int    `json:"reviewers"`
	Active    int    `json:"active"`
	// Seq counts the accepted edits of the session's lifetime; for durable
	// tenants it equals the journal sequence number, so a restarted server
	// reports the same Seq it had before the crash.
	Seq     uint64 `json:"seq"`
	Version uint64 `json:"version"`
	Durable bool   `json:"durable"`
}

// TenantList is the body of GET /v1/tenants.
type TenantList struct {
	Tenants []string `json:"tenants"`
}

// Ticket identifies an async resolve in flight.
type Ticket struct {
	Ticket string `json:"ticket"`
}

// TicketStatus reports the state of an async resolve. Exactly one of Result
// and Error is set once Done.
type TicketStatus struct {
	Done    bool    `json:"done"`
	Version uint64  `json:"version,omitempty"`
	Result  *Result `json:"result,omitempty"`
	Error   *Error  `json:"error,omitempty"`
}

// Error codes, mapped back onto the wgrap sentinel errors by the client so
// errors.Is keeps working across the network boundary. CodeNotOwner is the
// cluster routing code: the addressed node does not own the tenant's venue;
// the envelope carries the owner and the responder's shard-map epoch so the
// client can redirect (and refresh a stale map when the epoch moved).
const (
	CodeInvalidEdit       = "invalid-edit"
	CodeConflictSaturated = "conflict-saturated"
	CodeInfeasible        = "infeasible"
	CodeInvalidInstance   = "invalid-instance"
	CodeUnknownMethod     = "unknown-method"
	CodeNotFound          = "not-found"
	CodeTenantExists      = "tenant-exists"
	CodeNotOwner          = "not_owner"
	CodeInternal          = "internal"
)

// Error is the JSON error envelope of every non-2xx response. The Owner*
// and Epoch fields are set only on CodeNotOwner responses.
type Error struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	Owner     string `json:"owner,omitempty"`
	OwnerAddr string `json:"owner_addr,omitempty"`
	Epoch     uint64 `json:"epoch,omitempty"`
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// NodeInfo describes one static cluster member in the shard map. Alive is
// the reporting node's current health view of it.
type NodeInfo struct {
	ID    string `json:"id"`
	Addr  string `json:"addr"`
	Alive bool   `json:"alive"`
}

// ShardMap is the body of GET /cluster/map: the static membership with the
// reporting node's health view, the consistent-hashing parameters, and an
// epoch that increments on every membership transition (a node observed
// dead or back alive). Venue ownership is a pure function of the map:
// consistent-hash the venue id over the alive nodes with VNodes virtual
// nodes per member — every node and every client computes the same owner
// from the same map.
type ShardMap struct {
	Epoch  uint64     `json:"epoch"`
	Self   string     `json:"self"`
	VNodes int        `json:"vnodes"`
	Nodes  []NodeInfo `json:"nodes"`
}
