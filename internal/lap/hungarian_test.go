package lap

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMinimizeSmall(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	rows, total, err := Minimize(cost)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: r0->c1 (1), r1->c0 (2), r2->c2 (2) = 5.
	if total != 5 {
		t.Fatalf("total = %v, want 5", total)
	}
	want := []int{1, 0, 2}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("rows = %v, want %v", rows, want)
		}
	}
}

func TestMinimizeRejectsNonSquare(t *testing.T) {
	if _, _, err := Minimize([][]float64{{1, 2}}); err == nil {
		t.Fatal("non-square matrix accepted")
	}
}

func TestMaximizeRectBasic(t *testing.T) {
	profit := [][]float64{
		{0.9, 0.1, 0.5, 0.3},
		{0.8, 0.7, 0.1, 0.2},
	}
	rows, total, err := MaximizeRect(profit)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-1.6) > 1e-9 {
		t.Fatalf("total = %v, want 1.6", total)
	}
	if rows[0] != 0 || rows[1] != 1 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestMaximizeRectEmpty(t *testing.T) {
	rows, total, err := MaximizeRect(nil)
	if err != nil || rows != nil || total != 0 {
		t.Fatalf("empty input: rows=%v total=%v err=%v", rows, total, err)
	}
}

func TestMaximizeRectMoreRowsThanCols(t *testing.T) {
	if _, _, err := MaximizeRect([][]float64{{1}, {2}}); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestMaximizeRectRagged(t *testing.T) {
	if _, _, err := MaximizeRect([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
}

func TestMaximizeRectForbidden(t *testing.T) {
	profit := [][]float64{
		{Forbidden, 5, 1},
		{Forbidden, Forbidden, 2},
	}
	rows, total, err := MaximizeRect(profit)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0] != 1 || rows[1] != 2 || total != 7 {
		t.Fatalf("rows=%v total=%v", rows, total)
	}
}

func TestMaximizeRectAllForbiddenRow(t *testing.T) {
	profit := [][]float64{
		{Forbidden, Forbidden},
		{1, 2},
	}
	if _, _, err := MaximizeRect(profit); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

// bruteMax finds the optimal rectangular assignment by enumeration.
func bruteMax(profit [][]float64, row int, usedCols map[int]bool) (float64, bool) {
	if row == len(profit) {
		return 0, true
	}
	best := math.Inf(-1)
	ok := false
	for c := range profit[row] {
		if usedCols[c] || isForbidden(profit[row][c]) {
			continue
		}
		usedCols[c] = true
		sub, feasible := bruteMax(profit, row+1, usedCols)
		usedCols[c] = false
		if feasible && profit[row][c]+sub > best {
			best = profit[row][c] + sub
			ok = true
		}
	}
	return best, ok
}

// Property: Hungarian result equals brute force on random small matrices.
func TestMaximizeRectMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		m := n + rng.Intn(3)
		profit := make([][]float64, n)
		for i := range profit {
			profit[i] = make([]float64, m)
			for j := range profit[i] {
				if rng.Float64() < 0.1 {
					profit[i][j] = Forbidden
				} else {
					profit[i][j] = math.Round(rng.Float64()*100) / 100
				}
			}
		}
		rows, total, err := MaximizeRect(profit)
		want, feasible := bruteMax(profit, 0, map[int]bool{})
		if !feasible {
			return err == ErrInfeasible
		}
		if err != nil {
			return false
		}
		// The assignment must be valid (distinct columns) and optimal.
		seen := map[int]bool{}
		check := 0.0
		for i, c := range rows {
			if seen[c] {
				return false
			}
			seen[c] = true
			check += profit[i][c]
		}
		return math.Abs(total-want) < 1e-6 && math.Abs(check-total) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: permuting rows does not change the optimal value.
func TestMaximizeRectPermutationInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		m := n + rng.Intn(3)
		profit := make([][]float64, n)
		for i := range profit {
			profit[i] = make([]float64, m)
			for j := range profit[i] {
				profit[i][j] = rng.Float64()
			}
		}
		_, t1, err1 := MaximizeRect(profit)
		perm := rng.Perm(n)
		shuffled := make([][]float64, n)
		for i, p := range perm {
			shuffled[i] = profit[p]
		}
		_, t2, err2 := MaximizeRect(shuffled)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(t1-t2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMaximizeRect200(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n, m := 200, 250
	profit := make([][]float64, n)
	for i := range profit {
		profit[i] = make([]float64, m)
		for j := range profit[i] {
			profit[i][j] = rng.Float64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MaximizeRect(profit); err != nil {
			b.Fatal(err)
		}
	}
}
