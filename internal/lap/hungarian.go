// Package lap solves the linear assignment problem with the Hungarian
// (Kuhn–Munkres) algorithm in O(n^3). The Stage Deepening Greedy Algorithm of
// the paper (Section 4.2) solves one linear assignment per stage; this
// package is its workhorse when the per-stage reviewer workload is 1, and the
// building block of the rectangular/duplicated formulations used otherwise.
package lap

import (
	"errors"
	"math"
)

// ErrInfeasible is returned when no perfect matching of the rows exists, i.e.
// some row can only be matched to forbidden columns.
var ErrInfeasible = errors.New("lap: no feasible assignment")

// Forbidden marks an impossible pairing in a profit matrix: cells set to
// negative infinity are never selected.
var Forbidden = math.Inf(-1)

// MaximizeRect solves the rectangular linear assignment problem: given an
// n×m profit matrix with n <= m, it returns for every row the column
// assigned to it (each column used at most once) so that the total profit is
// maximised, together with the total profit. Cells set to Forbidden are never
// selected. When n > m the call fails with ErrInfeasible.
func MaximizeRect(profit [][]float64) ([]int, float64, error) {
	n := len(profit)
	if n == 0 {
		return nil, 0, nil
	}
	m := len(profit[0])
	if n > m {
		return nil, 0, ErrInfeasible
	}
	// Convert to a minimisation problem on costs. Forbidden cells get a huge
	// but finite cost so the dual updates stay finite; we verify afterwards
	// that no forbidden cell was selected.
	maxVal := 0.0
	for i := range profit {
		if len(profit[i]) != m {
			return nil, 0, errors.New("lap: ragged profit matrix")
		}
		for _, v := range profit[i] {
			if v > maxVal && !isForbidden(v) {
				maxVal = v
			}
		}
	}
	big := (maxVal + 1) * float64(m+1)
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, m)
		for j := range cost[i] {
			v := profit[i][j]
			if isForbidden(v) {
				cost[i][j] = big
			} else {
				cost[i][j] = maxVal - v
			}
		}
	}
	rowTo, err := minimizeRect(cost)
	if err != nil {
		return nil, 0, err
	}
	total := 0.0
	for i, j := range rowTo {
		if isForbidden(profit[i][j]) {
			return nil, 0, ErrInfeasible
		}
		total += profit[i][j]
	}
	return rowTo, total, nil
}

// Minimize solves the square linear assignment problem on a cost matrix,
// returning the column assigned to each row and the total cost.
func Minimize(cost [][]float64) ([]int, float64, error) {
	n := len(cost)
	for i := range cost {
		if len(cost[i]) != n {
			return nil, 0, errors.New("lap: Minimize requires a square matrix")
		}
	}
	rowTo, err := minimizeRect(cost)
	if err != nil {
		return nil, 0, err
	}
	total := 0.0
	for i, j := range rowTo {
		total += cost[i][j]
	}
	return rowTo, total, nil
}

func isForbidden(v float64) bool { return math.IsInf(v, -1) }

// minimizeRect is the Jonker–Volgenant style shortest augmenting path
// implementation of the Hungarian algorithm for an n×m cost matrix (n <= m).
// It returns, for every row, the assigned column.
func minimizeRect(cost [][]float64) ([]int, error) {
	n := len(cost)
	if n == 0 {
		return nil, nil
	}
	m := len(cost[0])
	if n > m {
		return nil, ErrInfeasible
	}
	const inf = math.MaxFloat64
	// 1-based potentials as in the classic formulation.
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1) // p[j] = row matched to column j (0 = none)
	way := make([]int, m+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := 0; j <= m; j++ {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := -1
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			if j1 == -1 || delta == inf {
				return nil, ErrInfeasible
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	rowTo := make([]int, n)
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			rowTo[p[j]-1] = j - 1
		}
	}
	return rowTo, nil
}
