package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// ErrTailGap reports a non-contiguous journal observed by a tail reader:
// the next complete record skips ahead of the reader's sequence, which
// happens when a compaction folded records the reader had not consumed yet
// into the snapshot. The reader cannot recover the gap from the journal
// alone — the consumer must restart from the snapshot (ReadState).
var ErrTailGap = errors.New("durable: journal tail gap (records compacted away)")

// TailReader streams the records of a live session journal without
// disturbing the store that appends to it: it re-opens the journal file
// read-only and decodes complete frames as they land, tolerating a torn or
// still-in-flight tail (Next simply reports no record yet) and a compaction
// truncating the file under it (it reopens from the start and skips records
// at or below its sequence). This is the journal-shipping primitive: a
// cluster owner drains a TailReader after each accepted edit batch to push
// the new records to the tenant's follower, and serves catch-up reads
// (GET /cluster/tenants/{id}/journal?after=N) from a fresh reader.
type TailReader struct {
	dir string
	seq uint64 // last sequence returned
	off int64  // byte offset of the next unread frame
	buf []byte // remainder of the last read starting at off
}

// NewTailReader positions a reader after sequence `after` in dir's journal.
// Records at or below `after` are skipped as they are encountered; the
// caller is responsible for having consumed them (typically from the
// snapshot — see ReadState).
func NewTailReader(dir string, after uint64) *TailReader {
	return &TailReader{dir: dir, seq: after}
}

// Seq returns the sequence of the last record returned (or the starting
// point when none was).
func (t *TailReader) Seq() uint64 { return t.seq }

// load refreshes t.buf with the journal bytes from t.off to EOF. A file
// shorter than t.off means the journal was truncated by a compaction: the
// reader restarts from offset 0 and relies on the sequence filter.
func (t *TailReader) load() error {
	raw, err := os.ReadFile(filepath.Join(t.dir, journalFile))
	if errors.Is(err, os.ErrNotExist) {
		t.buf = nil
		return nil
	}
	if err != nil {
		return err
	}
	if int64(len(raw)) < t.off {
		t.off = 0 // compacted under us; re-scan and seq-filter
	}
	t.buf = raw[t.off:]
	return nil
}

// Next returns the next complete record, or ok=false when the journal holds
// no complete record beyond the reader's position yet (an in-flight append
// or a torn tail — poll again later). A record that skips sequence numbers
// returns ErrTailGap.
func (t *TailReader) Next() (Record, bool, error) {
	for {
		if len(t.buf) == 0 {
			if err := t.load(); err != nil {
				return Record{}, false, err
			}
			if len(t.buf) == 0 {
				return Record{}, false, nil
			}
		}
		payload, next, ok := readFrame(t.buf, 0)
		if !ok {
			// Incomplete or torn frame at the current position: re-read in
			// case more bytes landed, then report "nothing yet" if still so.
			if err := t.load(); err != nil {
				return Record{}, false, err
			}
			if payload, next, ok = readFrame(t.buf, 0); !ok {
				return Record{}, false, nil
			}
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return Record{}, false, fmt.Errorf("durable: decoding journal record: %w", err)
		}
		t.off += int64(next)
		t.buf = t.buf[next:]
		if rec.Seq <= t.seq {
			continue // pre-compaction residue or already consumed
		}
		if rec.Seq != t.seq+1 {
			return Record{}, false, fmt.Errorf("%w: record seq %d after %d", ErrTailGap, rec.Seq, t.seq)
		}
		t.seq = rec.Seq
		return rec, true, nil
	}
}

// Drain returns every complete record currently beyond the reader's
// position, in order.
func (t *TailReader) Drain() ([]Record, error) {
	var recs []Record
	for {
		rec, ok, err := t.Next()
		if err != nil {
			return recs, err
		}
		if !ok {
			return recs, nil
		}
		recs = append(recs, rec)
	}
}

// ReadState loads dir's snapshot without opening the store — the read-only
// side of the durable layout, used to bootstrap a replication follower.
func ReadState(dir string) (*State, error) {
	raw, err := os.ReadFile(filepath.Join(dir, snapshotFile))
	if err != nil {
		return nil, fmt.Errorf("durable: reading snapshot: %w", err)
	}
	payload, err := readSingleFrame(raw, "snapshot")
	if err != nil {
		return nil, err
	}
	st := &State{}
	if err := json.Unmarshal(payload, st); err != nil {
		return nil, fmt.Errorf("durable: decoding snapshot: %w", err)
	}
	return st, nil
}

// Materialize writes a snapshot and a journal record suffix into dir — the
// replication bootstrap path: a follower lays down the chunk it fetched from
// a tenant's owner as a regular durable session directory, then restores a
// solver from it exactly like crash recovery would. It refuses to overwrite
// an existing session and validates that the records continue the snapshot
// contiguously.
func Materialize(dir string, st *State, recs []Record) error {
	if st == nil {
		return errors.New("durable: Materialize requires a snapshot")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if Exists(dir) {
		return fmt.Errorf("durable: %s already holds session state", dir)
	}
	last := st.Seq
	var buf []byte
	for _, rec := range recs {
		if rec.Seq <= st.Seq {
			continue
		}
		if rec.Seq != last+1 {
			return fmt.Errorf("durable: materialize gap: record seq %d after %d", rec.Seq, last)
		}
		last = rec.Seq
		payload, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		buf = appendFrame(buf, payload)
	}
	if err := os.WriteFile(filepath.Join(dir, journalFile), buf, 0o644); err != nil {
		return err
	}
	return writeSnapshot(dir, st)
}

// ReadSince returns dir's snapshot plus the journal records with sequence
// beyond max(after, snapshot seq), without disturbing the live store. When
// `after` is below the snapshot's sequence the caller needs the snapshot to
// catch up; otherwise the records alone suffice.
func ReadSince(dir string, after uint64) (*State, []Record, error) {
	st, err := ReadState(dir)
	if err != nil {
		return nil, nil, err
	}
	from := after
	if st.Seq > from {
		from = st.Seq
	}
	recs, err := NewTailReader(dir, from).Drain()
	if err != nil {
		return nil, nil, err
	}
	return st, recs, nil
}
