package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Record framing: every snapshot file and journal record is stored as
//
//	[u32 little-endian payload length][u32 little-endian CRC-32C][payload]
//
// The CRC covers the payload only. A record whose header or payload extends
// past the end of the file, or whose checksum mismatches, marks the end of
// the valid prefix: everything before it replays, everything from it on is
// discarded as a torn tail. That is exactly the failure mode of a crash (or
// SIGKILL) between a write and its fsync — the tail record may be missing,
// short, or garbage, but records the store acknowledged as synced are always
// complete and in the prefix.

var crcTable = crc32.MakeTable(crc32.Castagnoli)

const frameHeader = 8

// appendFrame appends one framed record to buf.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// readFrame decodes the framed record starting at data[off]. It returns the
// payload and the offset of the next record, or ok=false when the record is
// truncated or fails its checksum — the torn-tail marker.
func readFrame(data []byte, off int) (payload []byte, next int, ok bool) {
	if off+frameHeader > len(data) {
		return nil, off, false
	}
	n := int(binary.LittleEndian.Uint32(data[off : off+4]))
	sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
	if n < 0 || off+frameHeader+n > len(data) {
		return nil, off, false
	}
	payload = data[off+frameHeader : off+frameHeader+n]
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, off, false
	}
	return payload, off + frameHeader + n, true
}

// readFrames decodes every valid record of a journal image and returns the
// byte length of the valid prefix; bytes beyond it are a torn tail.
func readFrames(data []byte) (payloads [][]byte, validLen int) {
	off := 0
	for {
		payload, next, ok := readFrame(data, off)
		if !ok {
			return payloads, off
		}
		payloads = append(payloads, payload)
		off = next
	}
}

// readSingleFrame decodes a file that must hold exactly one framed record
// (the snapshot file).
func readSingleFrame(data []byte, what string) ([]byte, error) {
	payload, next, ok := readFrame(data, 0)
	if !ok {
		return nil, fmt.Errorf("durable: %s is truncated or corrupt", what)
	}
	if next != len(data) {
		return nil, fmt.Errorf("durable: %s has %d trailing bytes", what, len(data)-next)
	}
	return payload, nil
}
