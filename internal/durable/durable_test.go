package durable

import (
	"os"
	"testing"
	"time"

	"repro/internal/wire"
)

func testState(seq uint64) *State {
	return &State{
		Seq: seq,
		Instance: &wire.Instance{
			GroupSize: 2,
			Workload:  3,
			Papers:    []wire.Paper{{Topics: []float64{1, 0}}, {Topics: []float64{0, 1}}},
			Reviewers: []wire.Reviewer{{Topics: []float64{1, 1}}, {Topics: []float64{0.5, 0.5}}},
			Conflicts: [][2]int{{0, 1}},
		},
		Withdrawn: []int{1},
	}
}

func testRecord(seq uint64) Record {
	return Record{Seq: seq, Edit: wire.Edit{Op: wire.OpAddConflict, R: int(seq), P: 0}}
}

func mustCreate(t *testing.T, dir string, st *State, sync time.Duration) *Store {
	t.Helper()
	s, err := Create(dir, st, sync)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustCreate(t, dir, testState(0), 0)
	for seq := uint64(1); seq <= 5; seq++ {
		if err := s.Append(testRecord(seq)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, st, tail, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st.Seq != 0 || len(st.Withdrawn) != 1 || st.Withdrawn[0] != 1 {
		t.Fatalf("snapshot state mismatch: %+v", st)
	}
	if st.Instance.GroupSize != 2 || len(st.Instance.Papers) != 2 || len(st.Instance.Conflicts) != 1 {
		t.Fatalf("snapshot instance mismatch: %+v", st.Instance)
	}
	if len(tail) != 5 {
		t.Fatalf("want 5 journal records, got %d", len(tail))
	}
	for i, rec := range tail {
		if rec.Seq != uint64(i+1) || rec.Edit.Op != wire.OpAddConflict || rec.Edit.R != i+1 {
			t.Fatalf("record %d mismatch: %+v", i, rec)
		}
	}
	// Appends continue after a reopen.
	if err := s2.Append(testRecord(6)); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	_, _, tail, err = openAndClose(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 6 {
		t.Fatalf("want 6 records after reopen-append, got %d", len(tail))
	}
}

func openAndClose(dir string) (*Store, *State, []Record, error) {
	s, st, tail, err := Open(dir, 0)
	if err == nil {
		s.Close()
	}
	return s, st, tail, err
}

func TestCreateRefusesExistingState(t *testing.T) {
	dir := t.TempDir()
	mustCreate(t, dir, testState(0), 0).Close()
	if _, err := Create(dir, testState(0), 0); err == nil {
		t.Fatal("Create over existing state must fail")
	}
}

func TestTruncatedTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s := mustCreate(t, dir, testState(0), 0)
	for seq := uint64(1); seq <= 4; seq++ {
		if err := s.Append(testRecord(seq)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	jpath := JournalPath(dir)
	raw, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	// Chop a few bytes off the tail: the last record becomes torn.
	if err := os.WriteFile(jpath, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, _, tail, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 3 {
		t.Fatalf("want the 3-record valid prefix after a torn tail, got %d", len(tail))
	}
	// The torn tail was truncated away: a new append lands at seq 4 again
	// and round-trips.
	if err := s2.Append(testRecord(4)); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	_, _, tail, err = openAndClose(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 4 || tail[3].Seq != 4 {
		t.Fatalf("append after tail truncation did not extend the prefix: %+v", tail)
	}
}

func TestCorruptChecksumStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s := mustCreate(t, dir, testState(0), 0)
	var offsets []int64
	for seq := uint64(1); seq <= 4; seq++ {
		fi, _ := os.Stat(JournalPath(dir))
		offsets = append(offsets, fi.Size())
		if err := s.Append(testRecord(seq)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Flip one payload byte of record 3 (index 2): records 1-2 survive,
	// 3 and everything after are dropped as a corrupt tail.
	raw, err := os.ReadFile(JournalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	raw[offsets[2]+frameHeader+2] ^= 0xFF
	if err := os.WriteFile(JournalPath(dir), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, tail, err := openAndClose(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 2 {
		t.Fatalf("want the 2-record prefix before the corrupt record, got %d", len(tail))
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustCreate(t, dir, testState(0), 0)
	for seq := uint64(1); seq <= 3; seq++ {
		if err := s.Append(testRecord(seq)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.SinceCompact(); got != 3 {
		t.Fatalf("SinceCompact = %d, want 3", got)
	}
	if err := s.Compact(testState(3)); err != nil {
		t.Fatal(err)
	}
	if got := s.SinceCompact(); got != 0 {
		t.Fatalf("SinceCompact after Compact = %d, want 0", got)
	}
	// Post-compaction appends carry on from the compacted sequence.
	if err := s.Append(testRecord(4)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	_, st, tail, err := openAndClose(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Seq != 3 {
		t.Fatalf("snapshot seq = %d, want 3", st.Seq)
	}
	if len(tail) != 1 || tail[0].Seq != 4 {
		t.Fatalf("post-compaction tail mismatch: %+v", tail)
	}
}

// TestCompactionCrashBeforeTruncate simulates a crash between the snapshot
// rename and the journal truncation: stale records with seq <= snapshot.Seq
// must be skipped by the sequence filter on replay.
func TestCompactionCrashBeforeTruncate(t *testing.T) {
	dir := t.TempDir()
	s := mustCreate(t, dir, testState(0), 0)
	for seq := uint64(1); seq <= 3; seq++ {
		if err := s.Append(testRecord(seq)); err != nil {
			t.Fatal(err)
		}
	}
	// The crash-equivalent: new snapshot lands, journal keeps its records.
	if err := writeSnapshot(dir, testState(2)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	_, st, tail, err := openAndClose(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Seq != 2 {
		t.Fatalf("snapshot seq = %d, want 2", st.Seq)
	}
	if len(tail) != 1 || tail[0].Seq != 3 {
		t.Fatalf("want only record 3 past the snapshot, got %+v", tail)
	}
}

func TestGroupCommitSyncAndClose(t *testing.T) {
	dir := t.TempDir()
	s := mustCreate(t, dir, testState(0), 50*time.Millisecond)
	for seq := uint64(1); seq <= 3; seq++ {
		if err := s.Append(testRecord(seq)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Double close is a no-op.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, _, tail, err := openAndClose(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 3 {
		t.Fatalf("want 3 records after group-commit close, got %d", len(tail))
	}
}

func TestJournalGapDetected(t *testing.T) {
	dir := t.TempDir()
	s := mustCreate(t, dir, testState(0), 0)
	if err := s.Append(testRecord(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testRecord(3)); err != nil { // seq 2 missing
		t.Fatal(err)
	}
	s.Close()
	if _, _, _, err := openAndClose(dir); err == nil {
		t.Fatal("a sequence gap must fail Open")
	}
}
