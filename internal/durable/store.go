// Package durable persists a solver session as a snapshot plus an
// append-only edit journal, so a killed or redeployed process replays back
// to the exact warm state: snapshot ∘ journal ≡ the accepted-edit history.
//
// Layout of a session directory:
//
//	snapshot — one framed JSON State record, replaced atomically
//	           (write tmp, fsync, rename) at creation and at every
//	           compaction
//	journal.wal — framed JSON Record entries, append-only, fsynced either
//	           per record (SyncInterval <= 0) or by a group-commit flusher
//
// Every record carries the session's edit sequence number; the snapshot
// records the sequence it includes. Replay loads the snapshot and applies
// the journal records with a higher sequence, which makes compaction
// crash-safe without coordination: a crash between the snapshot rename and
// the journal truncation merely leaves already-included records behind, and
// the sequence filter skips them.
//
// This journal is the durability layer of serving sessions (wgrap.Solver
// and wgrap-serve tenants). It is unrelated to cmd/wgrap-journal, the
// paper-track CLI for Journal Reviewer Assignment — "journal" there means an
// academic journal's single-paper assignment problem.
package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/wire"
)

const (
	snapshotFile = "snapshot"
	journalFile  = "journal.wal"
)

// State is the snapshot payload: the full instance (conflicts included),
// the withdrawn-paper set and the edit sequence number the snapshot covers.
type State struct {
	Seq       uint64         `json:"seq"`
	Instance  *wire.Instance `json:"instance"`
	Withdrawn []int          `json:"withdrawn,omitempty"`
}

// Record is one journaled edit.
type Record struct {
	Seq  uint64    `json:"seq"`
	Edit wire.Edit `json:"edit"`
}

// Store is the open handle of a session directory: it appends journal
// records, batches fsyncs, and rewrites the snapshot at compaction.
type Store struct {
	dir          string
	syncInterval time.Duration

	mu           sync.Mutex
	f            *os.File
	dirty        bool // written records not yet fsynced
	sinceCompact int
	closed       bool
	err          error // sticky write/fsync failure

	flushStop chan struct{}
	flushDone chan struct{}
}

// Exists reports whether dir holds durable session state.
func Exists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, snapshotFile))
	return err == nil
}

// Create initialises dir (created if missing) with the initial snapshot and
// an empty journal, both synced before it returns. It fails when dir
// already holds a session — restore with Open instead of overwriting.
func Create(dir string, st *State, syncInterval time.Duration) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if Exists(dir) {
		return nil, fmt.Errorf("durable: %s already holds session state (open it instead)", dir)
	}
	if err := writeSnapshot(dir, st); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return newStore(dir, f, syncInterval), nil
}

// Open loads the snapshot and the valid journal prefix of dir and returns
// the store positioned for further appends, the snapshot state, and the
// journal records newer than the snapshot in append order. A torn tail
// (truncated or checksum-failing suffix, the residue of a crash) is
// discarded and truncated away so new appends continue from the valid
// prefix.
func Open(dir string, syncInterval time.Duration) (*Store, *State, []Record, error) {
	raw, err := os.ReadFile(filepath.Join(dir, snapshotFile))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("durable: reading snapshot: %w", err)
	}
	payload, err := readSingleFrame(raw, "snapshot")
	if err != nil {
		return nil, nil, nil, err
	}
	st := &State{}
	if err := json.Unmarshal(payload, st); err != nil {
		return nil, nil, nil, fmt.Errorf("durable: decoding snapshot: %w", err)
	}

	jpath := filepath.Join(dir, journalFile)
	jraw, err := os.ReadFile(jpath)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, nil, fmt.Errorf("durable: reading journal: %w", err)
	}
	payloads, validLen := readFrames(jraw)
	var tail []Record
	last := st.Seq
	for _, p := range payloads {
		var rec Record
		if err := json.Unmarshal(p, &rec); err != nil {
			return nil, nil, nil, fmt.Errorf("durable: decoding journal record: %w", err)
		}
		if rec.Seq <= st.Seq {
			continue // included in the snapshot (pre-compaction residue)
		}
		if rec.Seq != last+1 {
			return nil, nil, nil, fmt.Errorf("durable: journal gap: record seq %d after %d", rec.Seq, last)
		}
		last = rec.Seq
		tail = append(tail, rec)
	}

	f, err := os.OpenFile(jpath, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, nil, err
	}
	if validLen < len(jraw) {
		if err := f.Truncate(int64(validLen)); err != nil {
			f.Close()
			return nil, nil, nil, fmt.Errorf("durable: truncating torn journal tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(validLen), 0); err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	return newStore(dir, f, syncInterval), st, tail, nil
}

func newStore(dir string, f *os.File, syncInterval time.Duration) *Store {
	s := &Store{dir: dir, f: f, syncInterval: syncInterval}
	if syncInterval > 0 {
		s.flushStop = make(chan struct{})
		s.flushDone = make(chan struct{})
		go s.flushLoop()
	}
	return s
}

// flushLoop is the group-commit flusher: it fsyncs the journal every
// SyncInterval while records were written since the last sync. Append
// acknowledges before the fsync in this mode, so a crash can lose at most
// the last interval's worth of accepted edits — the documented group-commit
// window.
func (s *Store) flushLoop() {
	defer close(s.flushDone)
	tick := time.NewTicker(s.syncInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.flushStop:
			return
		case <-tick.C:
			s.mu.Lock()
			if s.dirty && s.err == nil && !s.closed {
				if err := s.f.Sync(); err != nil {
					s.err = fmt.Errorf("durable: journal fsync: %w", err)
				}
				s.dirty = false
			}
			s.mu.Unlock()
		}
	}
}

// Append writes one record to the journal. With SyncInterval <= 0 it
// returns only after the record is fsynced (every acknowledged edit is
// durable); otherwise the flusher syncs it within the group-commit window.
// A write or sync failure is sticky: the store refuses further appends so a
// half-durable session cannot keep acknowledging edits.
func (s *Store) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	frame := appendFrame(nil, payload)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("durable: store is closed")
	}
	if s.err != nil {
		return s.err
	}
	if _, err := s.f.Write(frame); err != nil {
		s.err = fmt.Errorf("durable: journal write: %w", err)
		return s.err
	}
	s.sinceCompact++
	if s.syncInterval > 0 {
		s.dirty = true
		return nil
	}
	if err := s.f.Sync(); err != nil {
		s.err = fmt.Errorf("durable: journal fsync: %w", err)
		return s.err
	}
	return nil
}

// SinceCompact returns how many records were appended since the last
// snapshot (the compaction trigger).
func (s *Store) SinceCompact() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sinceCompact
}

// Compact atomically replaces the snapshot with st and resets the journal.
// The caller must guarantee st covers every appended record (st.Seq equals
// the last appended sequence) and that no append runs concurrently. Crash
// order is safe: the snapshot rename lands first, so a crash before the
// journal truncation only leaves records the sequence filter skips.
func (s *Store) Compact(st *State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("durable: store is closed")
	}
	if s.err != nil {
		return s.err
	}
	if err := writeSnapshot(s.dir, st); err != nil {
		return err
	}
	if err := s.f.Truncate(0); err != nil {
		s.err = fmt.Errorf("durable: truncating journal at compaction: %w", err)
		return s.err
	}
	if _, err := s.f.Seek(0, 0); err != nil {
		s.err = err
		return err
	}
	if err := s.f.Sync(); err != nil {
		s.err = fmt.Errorf("durable: journal fsync: %w", err)
		return s.err
	}
	s.dirty = false
	s.sinceCompact = 0
	return nil
}

// Sync forces an fsync of the journal, flushing the group-commit window.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.err != nil || !s.dirty {
		return s.err
	}
	if err := s.f.Sync(); err != nil {
		s.err = fmt.Errorf("durable: journal fsync: %w", err)
	}
	s.dirty = false
	return s.err
}

// Close flushes and closes the journal and stops the flusher goroutine.
// Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	var err error
	if s.dirty && s.err == nil {
		err = s.f.Sync()
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	if s.err != nil && err == nil {
		err = s.err
	}
	s.mu.Unlock()
	if s.flushStop != nil {
		close(s.flushStop)
		<-s.flushDone
	}
	return err
}

// writeSnapshot atomically replaces dir's snapshot: framed payload to a tmp
// file, fsync, rename, fsync the directory.
func writeSnapshot(dir string, st *State) error {
	payload, err := json.Marshal(st)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, snapshotFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(appendFrame(nil, payload)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapshotFile)); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// JournalPath returns the journal file of a session directory (exposed for
// crash-recovery tests that corrupt or truncate the tail).
func JournalPath(dir string) string { return filepath.Join(dir, journalFile) }
