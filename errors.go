package wgrap

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cra"
	"repro/internal/flow"
	"repro/internal/jra"
)

// Structured sentinel errors. Every error returned by the package either is
// one of these (wrapped with detail, so test with errors.Is), a context
// error (context.Canceled / context.DeadlineExceeded passed through
// untouched), or an internal error that has no public classification.
var (
	// ErrUnknownMethod reports an unrecognised assignment Method.
	ErrUnknownMethod = errors.New("wgrap: unknown method")
	// ErrInvalidInstance reports a malformed instance: no papers or
	// reviewers, inconsistent topic dimensions, non-positive constraints or
	// out-of-range conflict indices.
	ErrInvalidInstance = errors.New("wgrap: invalid instance")
	// ErrInfeasible reports that no assignment can satisfy the constraints:
	// the reviewer pool's total capacity R·δr is below the demand P·δp, or a
	// transportation stage cannot serve every paper.
	ErrInfeasible = errors.New("wgrap: infeasible instance")
	// ErrConflictSaturated reports that conflicts of interest leave a paper
	// with fewer than δp eligible reviewers, so the paper can never receive
	// a full group. Solver.AddConflict returns it to reject the edit;
	// RestorePaper returns it when conflicts accumulated while the paper was
	// withdrawn.
	ErrConflictSaturated = errors.New("wgrap: conflicts leave a paper with fewer eligible reviewers than the group size")
	// ErrInvalidEdit reports a session edit with out-of-range indices, a
	// mismatched topic dimension, or a non-positive workload.
	ErrInvalidEdit = errors.New("wgrap: invalid edit")
	// ErrJournalExists reports that WithJournalDir points at a directory that
	// already holds durable session state; restore it with RestoreSolver
	// instead of overwriting.
	ErrJournalExists = errors.New("wgrap: journal directory already holds session state")
)

// wrapErr maps internal-layer errors onto the public sentinels; context
// errors pass through untouched so errors.Is(err, context.Canceled) keeps
// working across the boundary.
func wrapErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return err
	case errors.Is(err, cra.ErrConflictSaturated) || errors.Is(err, jra.ErrTooFewCandidates):
		return fmt.Errorf("%w: %v", ErrConflictSaturated, err)
	case errors.Is(err, flow.ErrInfeasible) || errors.Is(err, cra.ErrInsufficientCapacity):
		return fmt.Errorf("%w: %v", ErrInfeasible, err)
	default:
		return err
	}
}

// wrapInstanceErr classifies an instance-validation failure: capacity
// shortfalls are feasibility problems, everything else is malformed input.
func wrapInstanceErr(in *Instance, err error) error {
	if err == nil {
		return nil
	}
	if len(in.Papers) > 0 && len(in.Reviewers) > 0 &&
		in.GroupSize > 0 && in.Workload > 0 &&
		in.NumReviewers()*in.Workload < in.NumPapers()*in.GroupSize {
		return fmt.Errorf("%w: %v", ErrInfeasible, err)
	}
	return fmt.Errorf("%w: %v", ErrInvalidInstance, err)
}
