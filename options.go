package wgrap

import (
	"fmt"
	"time"

	"repro/internal/cra"
	"repro/internal/flow"
)

// Option configures a Solver (and, through the deprecated AssignOptions
// shim, the one-shot entry points). All defaults are resolved in one place —
// resolveOptions — so every path (NewSolver, Assign, Refine) agrees on them:
// method sdga-sra, Dijkstra transport, ω=10, seed 1, no refinement budget.
type Option func(*options)

// options is the resolved configuration of a Solver.
type options struct {
	method           Method
	transport        TransportSolver
	omega            int
	refinementBudget time.Duration
	seed             int64
	shards           int
	candidateCap     int
	progress         func(Snapshot)
	journalDir       string
	snapshotEvery    int
	fsyncInterval    time.Duration
}

// resolveOptions applies opts over the documented defaults.
func resolveOptions(opts []Option) options {
	o := options{
		method:        MethodSDGASRA,
		transport:     TransportDijkstra,
		omega:         10,
		seed:          1,
		snapshotEvery: 4096,
		fsyncInterval: 5 * time.Millisecond,
	}
	for _, f := range opts {
		f(&o)
	}
	return o
}

// sra builds the stochastic-refinement configuration from the resolved
// options; the single constructor both Refine and the SDGA-SRA pipelines
// share, so their defaults can never diverge.
func (o options) sra() cra.SRA {
	return cra.SRA{Omega: o.omega, TimeBudget: o.refinementBudget, Seed: o.seed, Shards: o.shards,
		CandidateCap: o.candidateCap}
}

// WithMethod selects the assignment algorithm (default MethodSDGASRA).
func WithMethod(m Method) Option { return func(o *options) { o.method = m } }

// WithTransport selects the transportation solver used by the flow-based
// methods (default TransportDijkstra). Selecting TransportLegacy disables
// the warm re-solve path: every Resolve runs cold through the SPFA solver.
func WithTransport(t TransportSolver) Option { return func(o *options) { o.transport = t } }

// WithOmega sets the convergence threshold ω of the stochastic refinement
// (default 10, the paper's setting). Non-positive values fall back to the
// default.
func WithOmega(omega int) Option {
	return func(o *options) {
		if omega > 0 {
			o.omega = omega
		}
	}
}

// WithRefinementBudget caps the wall-clock refinement time. It composes
// with the context passed to Solve/Resolve: the earlier deadline stops the
// (anytime) refinement.
func WithRefinementBudget(d time.Duration) Option {
	return func(o *options) { o.refinementBudget = d }
}

// WithSeed makes the stochastic steps reproducible (default 1). Zero falls
// back to the default.
func WithSeed(seed int64) Option {
	return func(o *options) {
		if seed != 0 {
			o.seed = seed
		}
	}
}

// WithProgress registers a streaming progress callback (see
// Solver.OnImprovement, which can also set it after construction).
func WithProgress(fn func(Snapshot)) Option {
	return func(o *options) { o.progress = fn }
}

// WithShards bounds the goroutines the SDGA stage solves use to load and
// seed their transportation instances, sharded across papers (the profit
// matrix build is always parallel). The default 0 means one shard per
// available CPU; 1 forces a fully serial stage solve. The computed
// assignment is identical for every value — sharding only changes wall-clock
// time — so the only reasons to set this are benchmarking and capping the
// solver's CPU footprint in shared processes.
func WithShards(n int) Option {
	return func(o *options) { o.shards = n }
}

// WithCandidateCap enables sparse candidate pruning: every solve restricts
// each paper to its top-k candidate reviewers (ranked by approximate coverage
// score through an inverted topic index), making the per-stage matrix builds
// and transportation solves O(P·k) instead of O(P·R) — the sub-quadratic path
// that carries the solver to very large pools. Papers whose candidates all
// saturate are transparently widened back to the full pool, so a feasible
// instance never becomes infeasible under pruning; the objective may drop by
// the candidate truncation, a measured epsilon at paper scale (see the
// README's candidate-pruning section). The default 0 (and any non-positive
// value, and any k at or above the pool size) keeps the exact dense path and
// bit-identical results. Ignored by the non-flow methods and the legacy
// transport.
func WithCandidateCap(k int) Option {
	return func(o *options) {
		if k > 0 {
			o.candidateCap = k
		}
	}
}

// WithJournalDir makes the session durable: dir is initialised with a
// snapshot of the starting instance, every accepted edit is appended to a
// checksummed journal in it, and RestoreSolver(dir) rebuilds the session
// after a crash or restart (see durability.go for the full model).
// NewSolver fails with ErrJournalExists when dir already holds session
// state. The empty default keeps the session purely in-memory.
func WithJournalDir(dir string) Option {
	return func(o *options) { o.journalDir = dir }
}

// WithSnapshotEvery sets how many journaled edits accumulate before the
// session compacts — rewrites the snapshot at the current state and resets
// the journal, bounding restore time (default 4096). Non-positive values
// fall back to the default. Only meaningful with WithJournalDir.
func WithSnapshotEvery(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.snapshotEvery = n
		}
	}
}

// WithFsyncInterval sets the group-commit window of the edit journal: with
// a positive d (default 5ms) accepted edits are fsynced in batches at most
// d apart, so a crash loses at most the last window; d <= 0 fsyncs every
// edit before its mutator returns. Only meaningful with WithJournalDir.
func WithFsyncInterval(d time.Duration) Option {
	return func(o *options) { o.fsyncInterval = d }
}

// algorithmParts maps the resolved options to a cold construction algorithm
// plus an optional refinement flag — the execution path of the baseline
// methods and of the legacy-transport ablation (the session methods run
// through cra.Session instead). Keeping the refiner separate lets the
// Solver emit a construction snapshot between the phases and wire the
// refinement's improvement hook.
func (o options) algorithmParts() (base cra.Algorithm, refine bool, err error) {
	switch o.method {
	case MethodSDGASRA:
		return cra.SDGA{Transport: o.transport, Shards: o.shards, CandidateCap: o.candidateCap}, true, nil
	case MethodSDGA:
		return cra.SDGA{Transport: o.transport, Shards: o.shards, CandidateCap: o.candidateCap}, false, nil
	case MethodGreedy:
		return cra.Greedy{}, false, nil
	case MethodBRGG:
		return cra.BRGG{}, false, nil
	case MethodStableMatching:
		return cra.StableMatching{}, false, nil
	case MethodPairILP:
		return cra.PairILP{Transport: o.transport}, false, nil
	default:
		return nil, false, fmt.Errorf("%w: %q", ErrUnknownMethod, o.method)
	}
}

// sessionable reports whether the configuration runs through the warm
// cra.Session path: the SDGA-based methods on the default Dijkstra
// transport.
func (o options) sessionable() bool {
	return (o.method == MethodSDGASRA || o.method == MethodSDGA) &&
		o.transport != flow.Legacy
}

// AssignOptions configure the deprecated one-shot entry points.
//
// Deprecated: use NewSolver with functional options (WithMethod,
// WithTransport, WithOmega, WithRefinementBudget, WithSeed). AssignOptions
// remains as a thin shim: it converts to the same resolved options, so the
// documented defaults (method sdga-sra, ω=10, seed 1) are identical on both
// paths.
type AssignOptions struct {
	// Method selects the algorithm (default MethodSDGASRA).
	Method Method
	// Transport selects the transportation solver used by the flow-based
	// methods (default TransportDijkstra).
	Transport TransportSolver
	// Omega is the convergence threshold of the stochastic refinement
	// (default 10; only used by MethodSDGASRA).
	Omega int
	// RefinementBudget optionally caps the wall-clock refinement time. With
	// AssignContext it is unified with the context deadline: the refinement
	// stops at whichever comes first and returns the best assignment found.
	RefinementBudget time.Duration
	// Seed makes stochastic steps reproducible (default 1).
	Seed int64
}

// asOptions converts the legacy struct to functional options; zero fields
// keep the shared defaults.
func (a AssignOptions) asOptions() []Option {
	var opts []Option
	if a.Method != "" {
		opts = append(opts, WithMethod(a.Method))
	}
	if a.Transport != TransportDijkstra {
		opts = append(opts, WithTransport(a.Transport))
	}
	if a.Omega > 0 {
		opts = append(opts, WithOmega(a.Omega))
	}
	if a.RefinementBudget > 0 {
		opts = append(opts, WithRefinementBudget(a.RefinementBudget))
	}
	if a.Seed != 0 {
		opts = append(opts, WithSeed(a.Seed))
	}
	return opts
}
