package wgrap

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSolverViewVersioning pins the publication contract: version 0 before
// the first solve (nil Result), one monotone version per successful
// Solve/Resolve with warm/cold and coalesced-edit provenance, and published
// views immutable after later solves.
func TestSolverViewVersioning(t *testing.T) {
	in := benchConferenceInstance(20, 40, 8, 3)
	s, err := NewSolver(in, WithMethod(MethodSDGA), WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	v0 := s.View()
	if v0 == nil || v0.Version != 0 || v0.Result != nil {
		t.Fatalf("pre-solve view = %+v, want version 0 with nil Result", v0)
	}
	if s.Result() != nil {
		t.Fatal("Result() non-nil before the first solve")
	}
	res1, err := s.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	v1 := s.View()
	if v1.Version != 1 || v1.Warm || v1.Result == nil {
		t.Fatalf("post-solve view = %+v, want version 1, cold, non-nil Result", v1)
	}
	if v1.Result.Score != res1.Score {
		t.Fatalf("view score %v != solve score %v", v1.Result.Score, res1.Score)
	}
	if s.Result() != v1.Result {
		t.Fatal("Result() does not return the latest view's Result")
	}
	score1 := v1.Result.Score
	if err := s.WithdrawPaper(0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Resolve(context.Background()); err != nil {
		t.Fatal(err)
	}
	v2 := s.View()
	if v2.Version != 2 || !v2.Warm || v2.Edits != 1 {
		t.Fatalf("post-edit view = %+v, want version 2, warm, 1 edit", v2)
	}
	// A no-edit Resolve confirms and still publishes (0 coalesced edits).
	if _, err := s.Resolve(context.Background()); err != nil {
		t.Fatal(err)
	}
	if v3 := s.View(); v3.Version != 3 || v3.Edits != 0 {
		t.Fatalf("confirmation view = %+v, want version 3 with 0 edits", v3)
	}
	// The old view must be untouched by the later solves.
	if v1.Result.Score != score1 {
		t.Fatalf("published view mutated: score %v, was %v", v1.Result.Score, score1)
	}
}

// TestSolverResolveAsyncCoalesce: a burst of edits plus several ResolveAsync
// tickets must coalesce — every ticket completes, each with a published
// version, and the final assignment matches a cold solve of the identically
// edited instance to 1e-9 (the batched-edit warm/cold parity guarantee,
// through the async path).
func TestSolverResolveAsyncCoalesce(t *testing.T) {
	in := benchConferenceInstance(30, 60, 8, 3)
	s, err := NewSolver(in, WithMethod(MethodSDGA), WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(context.Background()); err != nil {
		t.Fatal(err)
	}
	base := s.View().Version
	for p := 0; p < 3; p++ {
		if err := s.WithdrawPaper(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AddConflict(5, 7); err != nil {
		t.Fatal(err)
	}
	tickets := []*Ticket{s.ResolveAsync(), s.ResolveAsync(), s.ResolveAsync()}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for i, tk := range tickets {
		res, err := tk.Wait(ctx)
		if err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
		if res == nil || tk.Version() <= base {
			t.Fatalf("ticket %d: res=%v version=%d (base %d)", i, res, tk.Version(), base)
		}
		select {
		case <-tk.Done():
		default:
			t.Fatalf("ticket %d: Done not closed after Wait", i)
		}
		if v := s.View(); v.Version < tk.Version() {
			t.Fatalf("ticket %d version %d not yet published (view at %d)", i, tk.Version(), v.Version)
		}
	}
	// Warm/cold parity on the async-drained batch.
	warmRes, err := s.Resolve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewSolver(s.Instance(), WithMethod(MethodSDGA), WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		if err := cold.WithdrawPaper(p); err != nil {
			t.Fatal(err)
		}
	}
	coldRes, err := cold.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(warmRes.Score-coldRes.Score) > 1e-9 {
		t.Fatalf("async-coalesced warm score %v != cold %v", warmRes.Score, coldRes.Score)
	}
}

// Pinned goroutine counts of the reader/writer stress test, deliberately
// constants (not NumCPU-derived) so the CI race runs are reproducible within
// their time budget.
const (
	stressReaders        = 4
	stressWriters        = 2
	stressEditsPerWriter = 24
)

// TestSolverConcurrentStress is the -race stress test of the concurrent
// session engine: stressReaders goroutines spin on View/Progress/ActivePapers
// while stressWriters goroutines issue edits and ResolveAsync tickets.
// Readers assert monotonically increasing versions and structurally
// consistent (never torn) snapshots; a view captured early must be
// bit-identical at the end (published results never alias solver-owned
// state); and the final coalesced state must match a cold solve to 1e-9.
func TestSolverConcurrentStress(t *testing.T) {
	in := benchConferenceInstance(24, 48, 8, 3)
	P, R, delta := in.NumPapers(), in.NumReviewers(), in.GroupSize
	s, err := NewSolver(in, WithMethod(MethodSDGA), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(context.Background()); err != nil {
		t.Fatal(err)
	}
	held := s.View()
	heldScore := held.Result.Score
	heldGroups := held.Result.Assignment.Clone()

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < stressReaders; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := s.View()
				if v == nil {
					t.Error("View() returned nil")
					return
				}
				if v.Version < last {
					t.Errorf("version went backwards: %d after %d", v.Version, last)
					return
				}
				last = v.Version
				if res := v.Result; res != nil {
					if len(res.Assignment.Groups) != P || math.IsNaN(res.Score) {
						t.Errorf("torn view at version %d: %+v", v.Version, res)
						return
					}
					for p, g := range res.Assignment.Groups {
						if len(g) != 0 && len(g) != delta {
							t.Errorf("torn group: paper %d has %d reviewers", p, len(g))
							return
						}
					}
				}
				if sn := s.Progress(); sn != nil && len(sn.Best.Groups) != P {
					t.Errorf("torn progress snapshot: %d groups", len(sn.Best.Groups))
					return
				}
				if n := s.ActivePapers(); n < 0 || n > P {
					t.Errorf("ActivePapers() = %d", n)
					return
				}
				runtime.Gosched()
			}
		}()
	}

	tickets := make(chan *Ticket, stressWriters*(stressEditsPerWriter+1))
	var writers sync.WaitGroup
	for w := 0; w < stressWriters; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < stressEditsPerWriter; i++ {
				var err error
				switch i % 3 {
				case 0:
					err = s.WithdrawPaper(rng.Intn(P))
				case 1:
					err = s.RestorePaper(rng.Intn(P))
				case 2:
					err = s.AddConflict(rng.Intn(R), rng.Intn(P))
				}
				// Saturation/capacity rejections are legitimate outcomes of
				// racing edits; anything else is a bug.
				if err != nil && !errors.Is(err, ErrConflictSaturated) && !errors.Is(err, ErrInfeasible) {
					t.Errorf("writer %d edit %d: %v", w, i, err)
					return
				}
				if i%6 == 5 {
					tickets <- s.ResolveAsync()
				}
			}
			tickets <- s.ResolveAsync()
		}(w)
	}
	writers.Wait()
	close(tickets)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for tk := range tickets {
		if _, err := tk.Wait(ctx); err != nil {
			t.Fatalf("ticket: %v", err)
		}
	}
	close(stop)
	readers.Wait()

	// The early view must be bit-identical after every concurrent solve.
	if held.Result.Score != heldScore || !reflect.DeepEqual(held.Result.Assignment, heldGroups) {
		t.Fatal("held view mutated by later solves")
	}
	// Final coalesced state vs a cold solve of the same instance.
	warmRes, err := s.Resolve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewSolver(s.Instance(), WithMethod(MethodSDGA), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < P; p++ {
		if !s.Active(p) {
			if err := cold.WithdrawPaper(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	coldRes, err := cold.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(warmRes.Score-coldRes.Score) > 1e-9 {
		t.Fatalf("stress-coalesced warm score %v != cold %v", warmRes.Score, coldRes.Score)
	}
}

// TestSolverProgressCallbackSafety is the regression test for the
// callback-under-lock fix: progress callbacks run while the solve lock is
// held, so the blocking Solve/Resolve must panic with a clear message
// instead of deadlocking, while the snapshot-safe surface — View, Progress,
// ActivePapers, the edit mutators (which stay pending until the solve
// drains them), ResolveAsync and OnImprovement — must all work from inside a
// callback.
func TestSolverProgressCallbackSafety(t *testing.T) {
	in := benchConferenceInstance(12, 24, 6, 3)
	s, err := NewSolver(in, WithMethod(MethodSDGA), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	var asyncTk *Ticket
	var calls atomic.Int64
	s.OnImprovement(func(sn Snapshot) {
		n := calls.Add(1)
		if v := s.View(); v == nil {
			t.Error("View() from callback returned nil")
		}
		if s.ActivePapers() != in.NumPapers() {
			t.Error("ActivePapers() from callback wrong")
		}
		_ = s.Progress()
		if n == 1 {
			if err := s.AddConflict(0, 0); err != nil {
				t.Errorf("AddConflict from callback: %v", err)
			}
			asyncTk = s.ResolveAsync()
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Resolve from a progress callback did not panic")
				}
			}()
			_, _ = s.Resolve(context.Background())
		}()
	})
	if _, err := s.Solve(context.Background()); err != nil {
		t.Fatal(err)
	}
	if calls.Load() == 0 {
		t.Fatal("progress callback never fired")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := asyncTk.Wait(ctx); err != nil {
		t.Fatalf("ResolveAsync issued from callback: %v", err)
	}
	// The callback's edit stayed pending through its own solve and applied
	// on the next drain (here: the async resolve).
	if !s.Instance().IsConflict(0, 0) {
		t.Fatal("conflict enqueued from callback was not applied")
	}
	// From outside any solve, Solve/Resolve must not panic.
	if _, err := s.Resolve(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestSolverWithdrawWaveShardParity: the coalesced withdrawal-wave re-solve
// (the shape ResolveAsync drains, and the one BenchmarkResolveAfterWithdraw
// gates) must produce bit-identical assignments at any shard count, now that
// Workers > 1 engages the sharded dirty-row read phase, the pooled relax
// shards and the batched cycle cancellation. The instance is drawn wide
// enough (R above the flow layer's parallel thresholds) that all three
// actually run.
func TestSolverWithdrawWaveShardParity(t *testing.T) {
	in := benchConferenceInstance(120, 1100, 12, 3)
	const wave = 30
	run := func(shards int) []*Result {
		s, err := NewSolver(in, WithMethod(MethodSDGA), WithShards(shards), WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		var results []*Result
		res, err := s.Solve(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
		rng := rand.New(rand.NewSource(17))
		for trial := 0; trial < 2; trial++ {
			papers := rng.Perm(in.NumPapers())[:wave]
			for _, p := range papers {
				if err := s.WithdrawPaper(p); err != nil {
					t.Fatal(err)
				}
			}
			res, err := s.Resolve(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, res)
			for _, p := range papers {
				if err := s.RestorePaper(p); err != nil {
					t.Fatal(err)
				}
			}
			res, err = s.Resolve(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, res)
		}
		return results
	}
	ref := run(1)
	for _, shards := range []int{2, 4, 8} {
		got := run(shards)
		for step := range ref {
			if got[step].Score != ref[step].Score {
				t.Fatalf("shards %d step %d: score %v != serial %v", shards, step, got[step].Score, ref[step].Score)
			}
			if !reflect.DeepEqual(got[step].Assignment, ref[step].Assignment) {
				t.Fatalf("shards %d step %d: assignment differs from serial", shards, step)
			}
		}
	}
}
