package wgrap

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/wire"
)

// Durability. A Solver configured with WithJournalDir persists itself as a
// snapshot plus an append-only edit journal (internal/durable): the
// directory is initialised with a snapshot of the starting instance, and
// every accepted edit — AddConflict, WithdrawPaper, RestorePaper,
// AddReviewer, SetWorkload — is appended to the journal before it is
// applied, as a length-prefixed, checksummed record. RestoreSolver replays
// snapshot + journal back into a fresh session, so a killed or redeployed
// process resumes with the exact accepted-edit history; the next Resolve
// then matches a cold solve of the identically edited instance to 1e-9 —
// the same warm/cold parity bar the in-memory batch path meets, because
// replay IS the in-memory batch path fed from disk.
//
// Journal fsyncs are group-committed: with the default interval an accepted
// edit becomes durable within a few milliseconds, and a crash inside that
// window can lose at most the edits of the window (never corrupt earlier
// ones — a torn tail record is detected by its checksum and discarded on
// restore). WithFsyncInterval(0) closes the window: every edit is fsynced
// before its mutator returns. Compaction is automatic: after
// WithSnapshotEvery(n) journaled edits the solver rewrites the snapshot at
// the current state and resets the journal, keeping restore time bounded.
//
// This edit journal is unrelated to cmd/wgrap-journal, the paper-track CLI
// for Journal Reviewer Assignment (the single-paper problem of Definition 6)
// — "journal" there is the academic venue, not a write-ahead log.

// initDurable initialises a fresh durable directory for the solver: a
// synced snapshot of the starting instance plus an empty journal. Called
// from NewSolver before any edit can race.
func (s *Solver) initDurable(dir string, o options) error {
	in := s.sess.Instance()
	if _, ok := core.ScoreName(in.Score); !ok {
		return fmt.Errorf("%w: durable sessions require one of the named scoring functions", ErrInvalidInstance)
	}
	if durable.Exists(dir) {
		return fmt.Errorf("%w: %s", ErrJournalExists, dir)
	}
	st, err := s.durableStateLocked(0)
	if err != nil {
		return err
	}
	store, err := durable.Create(dir, st, o.fsyncInterval)
	if err != nil {
		return err
	}
	s.dstore = store
	return nil
}

// RestoreSolver rebuilds a durable Solver session from dir: it loads the
// snapshot, replays the journal records beyond it through the normal edit
// pipeline, and reattaches the journal for further appends. A torn journal
// tail (the residue of a crash between a write and its fsync) is discarded;
// everything acknowledged as synced is replayed. Options configure the
// rebuilt session exactly like NewSolver (method, seed, shards, …) and
// should match the original configuration — the instance itself, its
// conflicts, withdrawals and workload all come from the durable state.
//
// The restored session has Seq equal to the pre-crash accepted-edit count
// and re-solves warm or cold exactly like the original would after the same
// batch of edits.
func RestoreSolver(dir string, opts ...Option) (*Solver, error) {
	o := resolveOptions(opts)
	o.journalDir = dir
	store, st, tail, err := durable.Open(dir, o.fsyncInterval)
	if err != nil {
		return nil, err
	}
	s, err := restoreFromState(st, tail, o)
	if err != nil {
		store.Close()
		return nil, err
	}
	s.pendMu.Lock()
	s.dstore = store
	s.pendMu.Unlock()
	return s, nil
}

// restoreFromState builds the in-memory session for a loaded durable state:
// instance from the snapshot, snapshot withdrawals re-applied, journal tail
// replayed through the public mutators (the journal only ever holds
// accepted edits, so every replay must be accepted again — a rejection
// means corrupted state and fails the restore).
func restoreFromState(st *durable.State, tail []durable.Record, o options) (*Solver, error) {
	coreIn, err := st.Instance.ToInstance()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidInstance, err)
	}
	s, err := newSolver(coreIn, o)
	if err != nil {
		return nil, err
	}
	for _, p := range st.Withdrawn {
		if err := s.WithdrawPaper(p); err != nil {
			return nil, fmt.Errorf("wgrap: restoring withdrawn paper %d: %w", p, err)
		}
	}
	// Snapshot withdrawals are state, not history: reset the accepted-edit
	// counter to the snapshot's sequence so the tail replay counts up to the
	// pre-crash Seq.
	s.pendMu.Lock()
	s.accepted = st.Seq
	s.pendMu.Unlock()
	for _, rec := range tail {
		if err := s.replayEdit(rec.Edit); err != nil {
			return nil, fmt.Errorf("wgrap: replaying journal record %d: %w", rec.Seq, err)
		}
	}
	// Apply everything now and surface a replay divergence immediately
	// instead of at the first solve.
	s.mu.Lock()
	s.drainLocked()
	err = s.applyErr
	s.applyErr = nil
	s.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("wgrap: journal replay diverged: %w", err)
	}
	return s, nil
}

// replayEdit applies one journaled edit through the same mutators that
// accepted it originally.
func (s *Solver) replayEdit(e wire.Edit) error {
	switch e.Op {
	case wire.OpAddConflict:
		return s.AddConflict(e.R, e.P)
	case wire.OpWithdraw:
		return s.WithdrawPaper(e.P)
	case wire.OpRestore:
		return s.RestorePaper(e.P)
	case wire.OpAddReviewer:
		if e.Reviewer == nil {
			return fmt.Errorf("%w: add-reviewer record without a reviewer", ErrInvalidEdit)
		}
		_, err := s.AddReviewer(Reviewer{
			ID: e.Reviewer.ID, Name: e.Reviewer.Name,
			HIndex: e.Reviewer.HIndex, Topics: e.Reviewer.Topics,
		})
		return err
	case wire.OpSetWorkload:
		return s.SetWorkload(e.Workload)
	}
	return fmt.Errorf("%w: unknown journaled op %q", ErrInvalidEdit, e.Op)
}

// journalLocked appends op to the edit journal (no-op for non-durable
// sessions). Caller holds pendMu, which serialises appends in acceptance
// order. A failure is sticky — see Solver.storeErr.
func (s *Solver) journalLocked(op *pendingEdit) error {
	if s.dstore == nil {
		return nil
	}
	rec := durable.Record{Seq: s.accepted + 1, Edit: op.wireEdit()}
	if err := s.dstore.Append(rec); err != nil {
		s.storeErr = err
		return err
	}
	return nil
}

// wireEdit converts a pending edit to its journal/wire form.
func (op *pendingEdit) wireEdit() wire.Edit {
	switch op.kind {
	case editConflict:
		return wire.Edit{Op: wire.OpAddConflict, R: op.r, P: op.p}
	case editWithdraw:
		return wire.Edit{Op: wire.OpWithdraw, P: op.p}
	case editRestore:
		return wire.Edit{Op: wire.OpRestore, P: op.p}
	case editReviewer:
		return wire.Edit{Op: wire.OpAddReviewer, Reviewer: &wire.Reviewer{
			ID: op.rev.ID, Name: op.rev.Name, HIndex: op.rev.HIndex, Topics: op.rev.Topics,
		}}
	default:
		return wire.Edit{Op: wire.OpSetWorkload, Workload: op.workload}
	}
}

// maybeCompactLocked rewrites the snapshot and resets the journal once
// enough records accumulated. Caller holds mu (the solve lock). Taking
// pendMu across the compaction blocks mutators for its duration, which is
// what makes the snapshot consistent: with the pending batch drained and
// enqueues excluded, the session state equals the journaled history at
// sequence s.accepted exactly.
func (s *Solver) maybeCompactLocked() {
	if s.dstore == nil || s.dstore.SinceCompact() < s.opts.snapshotEvery {
		return
	}
	s.drainLocked()
	s.pendMu.Lock()
	defer s.pendMu.Unlock()
	if len(s.pending) != 0 || s.dstore == nil || s.storeErr != nil {
		// An edit raced in between the drain and the lock (or the store
		// failed/closed); the next trigger compacts.
		return
	}
	st, err := s.durableStateLocked(s.accepted)
	if err == nil {
		err = s.dstore.Compact(st)
	}
	if err != nil {
		s.storeErr = err
	}
}

// durableStateLocked serialises the session's current state (instance,
// conflicts, withdrawals) as the snapshot covering edit sequence seq. The
// caller must hold locks that pin the session state (mu, and pendMu when
// edits could race).
func (s *Solver) durableStateLocked(seq uint64) (*durable.State, error) {
	in := s.sess.Instance()
	w, err := wire.FromInstance(in)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidInstance, err)
	}
	var withdrawn []int
	for p := 0; p < in.NumPapers(); p++ {
		if !s.sess.Active(p) {
			withdrawn = append(withdrawn, p)
		}
	}
	return &durable.State{Seq: seq, Instance: w, Withdrawn: withdrawn}, nil
}

// Seq returns the number of edits the session has accepted over its
// lifetime, including edits still pending in the batch. For durable
// sessions this is the journal sequence number, so it survives a restart:
// a restored Solver reports the same Seq the original had — the version
// handle the crash-recovery CI asserts on. It never blocks on a solve in
// flight.
func (s *Solver) Seq() uint64 {
	s.pendMu.Lock()
	defer s.pendMu.Unlock()
	return s.accepted
}

// Sync forces the edit journal to disk, flushing the group-commit window.
// A no-op (nil) for non-durable sessions.
func (s *Solver) Sync() error {
	s.pendMu.Lock()
	st := s.dstore
	s.pendMu.Unlock()
	if st == nil {
		return nil
	}
	return st.Sync()
}

// Close flushes and closes the edit journal. For non-durable sessions it is
// a no-op and the Solver remains usable; a durable Solver refuses further
// edits and solves after Close (they would silently escape the journal).
// Idempotent.
func (s *Solver) Close() error {
	s.checkReentry()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drainLocked()
	s.pendMu.Lock()
	st := s.dstore
	s.dstore = nil
	if st != nil && s.storeErr == nil {
		s.storeErr = fmt.Errorf("%w: solver is closed", ErrInvalidEdit)
	}
	s.pendMu.Unlock()
	if st == nil {
		return nil
	}
	return st.Close()
}
