package wgrap

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func randomProblem(rng *rand.Rand, p, r, t int) ([]Paper, []Reviewer) {
	papers := make([]Paper, p)
	for i := range papers {
		papers[i] = Paper{ID: "p", Topics: randVec(rng, t)}
	}
	reviewers := make([]Reviewer, r)
	for i := range reviewers {
		reviewers[i] = Reviewer{ID: "r", Topics: randVec(rng, t)}
	}
	return papers, reviewers
}

func randVec(rng *rand.Rand, t int) Vector {
	v := make(Vector, t)
	for i := range v {
		v[i] = rng.Float64()
	}
	return v.Normalized()
}

func TestNewInstanceDefaultsWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	papers, reviewers := randomProblem(rng, 10, 4, 5)
	in := NewInstance(papers, reviewers, 2, 0)
	if in.Workload != 5 { // ceil(10*2/4)
		t.Fatalf("Workload = %d, want 5", in.Workload)
	}
	in2 := NewInstance(papers, reviewers, 2, 7)
	if in2.Workload != 7 {
		t.Fatalf("explicit workload overridden: %d", in2.Workload)
	}
}

func TestAssignAllMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	papers, reviewers := randomProblem(rng, 12, 8, 6)
	in := NewInstance(papers, reviewers, 3, 0)
	var scores []float64
	for _, m := range Methods() {
		res, err := Assign(in, AssignOptions{Method: m, Omega: 3})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if err := in.ValidateAssignment(res.Assignment); err != nil {
			t.Fatalf("%s produced an invalid assignment: %v", m, err)
		}
		if res.Method != m || res.Elapsed < 0 {
			t.Fatalf("%s: bad result metadata %+v", m, res)
		}
		if math.Abs(res.Score-in.AssignmentScore(res.Assignment)) > 1e-9 {
			t.Fatalf("%s: score mismatch", m)
		}
		if res.AverageCoverage <= 0 || res.AverageCoverage > 1+1e-9 {
			t.Fatalf("%s: average coverage out of range: %v", m, res.AverageCoverage)
		}
		if res.LowestCoverage < 0 || res.LowestCoverage > res.AverageCoverage+1e-9 {
			t.Fatalf("%s: lowest coverage inconsistent", m)
		}
		scores = append(scores, res.Score)
	}
	// The default pipeline (SDGA-SRA, index 0) should be at least as good as
	// the stable-matching baseline (index 4).
	if scores[0] < scores[4]-1e-9 {
		t.Fatalf("SDGA-SRA (%v) worse than SM (%v)", scores[0], scores[4])
	}
}

func TestAssignDefaultsToSDGASRA(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	papers, reviewers := randomProblem(rng, 8, 6, 5)
	in := NewInstance(papers, reviewers, 2, 0)
	res, err := Assign(in, AssignOptions{Omega: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodSDGASRA {
		t.Fatalf("default method = %q", res.Method)
	}
}

func TestAssignUnknownMethod(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	papers, reviewers := randomProblem(rng, 4, 4, 3)
	in := NewInstance(papers, reviewers, 2, 0)
	if _, err := Assign(in, AssignOptions{Method: "nope"}); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestRefineNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	papers, reviewers := randomProblem(rng, 10, 6, 5)
	in := NewInstance(papers, reviewers, 2, 0)
	base, err := Assign(in, AssignOptions{Method: MethodGreedy})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := Refine(in, base.Assignment, AssignOptions{Omega: 5, RefinementBudget: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if in.AssignmentScore(refined) < base.Score-1e-9 {
		t.Fatal("refinement decreased the score")
	}
}

func TestAssignJournalAndTopK(t *testing.T) {
	// The Section 3 running example.
	papers := []Paper{{ID: "p", Topics: Vector{0.35, 0.45, 0.2}}}
	reviewers := []Reviewer{
		{ID: "r1", Topics: Vector{0.15, 0.75, 0.1}},
		{ID: "r2", Topics: Vector{0.75, 0.15, 0.1}},
		{ID: "r3", Topics: Vector{0.1, 0.35, 0.55}},
	}
	in := NewInstance(papers, reviewers, 2, 1)
	best, err := AssignJournal(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(best.Score-0.9) > 1e-9 || len(best.Group) != 2 {
		t.Fatalf("AssignJournal = %+v", best)
	}
	top, err := TopReviewerGroups(in, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 || top[0].Score < top[1].Score || top[1].Score < top[2].Score {
		t.Fatalf("TopReviewerGroups not sorted: %+v", top)
	}
	if math.Abs(top[0].Score-best.Score) > 1e-12 {
		t.Fatal("TopK best differs from AssignJournal")
	}
}

func TestMetricsFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	papers, reviewers := randomProblem(rng, 8, 6, 5)
	in := NewInstance(papers, reviewers, 2, 0)
	good, err := Assign(in, AssignOptions{Method: MethodSDGA})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := Assign(in, AssignOptions{Method: MethodStableMatching})
	if err != nil {
		t.Fatal(err)
	}
	ratio := OptimalityRatio(in, good.Assignment)
	if ratio <= 0 || ratio > 1+1e-9 {
		t.Fatalf("OptimalityRatio = %v", ratio)
	}
	betterOrEqual, ties := SuperiorityRatio(in, good.Assignment, bad.Assignment)
	if betterOrEqual < 0 || betterOrEqual > 1 || ties < 0 || ties > betterOrEqual {
		t.Fatalf("SuperiorityRatio = %v, %v", betterOrEqual, ties)
	}
}

func TestScoringFunctionAliases(t *testing.T) {
	p := Vector{0.6, 0.4}
	r := Vector{0.5, 0.5}
	if math.Abs(WeightedCoverage(r, p)-0.9) > 1e-9 {
		t.Fatal("WeightedCoverage alias broken")
	}
	if math.Abs(DotProduct(r, p)-0.5) > 1e-9 {
		t.Fatal("DotProduct alias broken")
	}
	if math.Abs(ReviewerCoverage(r, p)-0.5) > 1e-9 {
		t.Fatal("ReviewerCoverage alias broken")
	}
	if math.Abs(PaperCoverage(r, p)-0.4) > 1e-9 {
		t.Fatal("PaperCoverage alias broken")
	}
}
