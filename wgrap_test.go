package wgrap

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"
)

func randomProblem(rng *rand.Rand, p, r, t int) ([]Paper, []Reviewer) {
	papers := make([]Paper, p)
	for i := range papers {
		papers[i] = Paper{ID: "p", Topics: randVec(rng, t)}
	}
	reviewers := make([]Reviewer, r)
	for i := range reviewers {
		reviewers[i] = Reviewer{ID: "r", Topics: randVec(rng, t)}
	}
	return papers, reviewers
}

func randVec(rng *rand.Rand, t int) Vector {
	v := make(Vector, t)
	for i := range v {
		v[i] = rng.Float64()
	}
	return v.Normalized()
}

func TestNewInstanceDefaultsWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	papers, reviewers := randomProblem(rng, 10, 4, 5)
	in := NewInstance(papers, reviewers, 2, 0)
	if in.Workload != 5 { // ceil(10*2/4)
		t.Fatalf("Workload = %d, want 5", in.Workload)
	}
	in2 := NewInstance(papers, reviewers, 2, 7)
	if in2.Workload != 7 {
		t.Fatalf("explicit workload overridden: %d", in2.Workload)
	}
}

func TestAssignAllMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	papers, reviewers := randomProblem(rng, 12, 8, 6)
	in := NewInstance(papers, reviewers, 3, 0)
	var scores []float64
	for _, m := range Methods() {
		res, err := Assign(in, AssignOptions{Method: m, Omega: 3})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if err := in.ValidateAssignment(res.Assignment); err != nil {
			t.Fatalf("%s produced an invalid assignment: %v", m, err)
		}
		if res.Method != m || res.Elapsed < 0 {
			t.Fatalf("%s: bad result metadata %+v", m, res)
		}
		if math.Abs(res.Score-in.AssignmentScore(res.Assignment)) > 1e-9 {
			t.Fatalf("%s: score mismatch", m)
		}
		if res.AverageCoverage <= 0 || res.AverageCoverage > 1+1e-9 {
			t.Fatalf("%s: average coverage out of range: %v", m, res.AverageCoverage)
		}
		if res.LowestCoverage < 0 || res.LowestCoverage > res.AverageCoverage+1e-9 {
			t.Fatalf("%s: lowest coverage inconsistent", m)
		}
		scores = append(scores, res.Score)
	}
	// The default pipeline (SDGA-SRA, index 0) should be at least as good as
	// the stable-matching baseline (index 4).
	if scores[0] < scores[4]-1e-9 {
		t.Fatalf("SDGA-SRA (%v) worse than SM (%v)", scores[0], scores[4])
	}
}

func TestAssignDefaultsToSDGASRA(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	papers, reviewers := randomProblem(rng, 8, 6, 5)
	in := NewInstance(papers, reviewers, 2, 0)
	res, err := Assign(in, AssignOptions{Omega: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodSDGASRA {
		t.Fatalf("default method = %q", res.Method)
	}
}

func TestAssignUnknownMethod(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	papers, reviewers := randomProblem(rng, 4, 4, 3)
	in := NewInstance(papers, reviewers, 2, 0)
	if _, err := Assign(in, AssignOptions{Method: "nope"}); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestRefineNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	papers, reviewers := randomProblem(rng, 10, 6, 5)
	in := NewInstance(papers, reviewers, 2, 0)
	base, err := Assign(in, AssignOptions{Method: MethodGreedy})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := Refine(in, base.Assignment, AssignOptions{Omega: 5, RefinementBudget: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if in.AssignmentScore(refined) < base.Score-1e-9 {
		t.Fatal("refinement decreased the score")
	}
}

func TestAssignJournalAndTopK(t *testing.T) {
	// The Section 3 running example.
	papers := []Paper{{ID: "p", Topics: Vector{0.35, 0.45, 0.2}}}
	reviewers := []Reviewer{
		{ID: "r1", Topics: Vector{0.15, 0.75, 0.1}},
		{ID: "r2", Topics: Vector{0.75, 0.15, 0.1}},
		{ID: "r3", Topics: Vector{0.1, 0.35, 0.55}},
	}
	in := NewInstance(papers, reviewers, 2, 1)
	best, err := AssignJournal(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(best.Score-0.9) > 1e-9 || len(best.Group) != 2 {
		t.Fatalf("AssignJournal = %+v", best)
	}
	top, err := TopReviewerGroups(in, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 || top[0].Score < top[1].Score || top[1].Score < top[2].Score {
		t.Fatalf("TopReviewerGroups not sorted: %+v", top)
	}
	if math.Abs(top[0].Score-best.Score) > 1e-12 {
		t.Fatal("TopK best differs from AssignJournal")
	}
}

func TestMetricsFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	papers, reviewers := randomProblem(rng, 8, 6, 5)
	in := NewInstance(papers, reviewers, 2, 0)
	good, err := Assign(in, AssignOptions{Method: MethodSDGA})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := Assign(in, AssignOptions{Method: MethodStableMatching})
	if err != nil {
		t.Fatal(err)
	}
	ratio := OptimalityRatio(in, good.Assignment)
	if ratio <= 0 || ratio > 1+1e-9 {
		t.Fatalf("OptimalityRatio = %v", ratio)
	}
	betterOrEqual, ties := SuperiorityRatio(in, good.Assignment, bad.Assignment)
	if betterOrEqual < 0 || betterOrEqual > 1 || ties < 0 || ties > betterOrEqual {
		t.Fatalf("SuperiorityRatio = %v, %v", betterOrEqual, ties)
	}
}

func TestScoringFunctionAliases(t *testing.T) {
	p := Vector{0.6, 0.4}
	r := Vector{0.5, 0.5}
	if math.Abs(WeightedCoverage(r, p)-0.9) > 1e-9 {
		t.Fatal("WeightedCoverage alias broken")
	}
	if math.Abs(DotProduct(r, p)-0.5) > 1e-9 {
		t.Fatal("DotProduct alias broken")
	}
	if math.Abs(ReviewerCoverage(r, p)-0.5) > 1e-9 {
		t.Fatal("ReviewerCoverage alias broken")
	}
	if math.Abs(PaperCoverage(r, p)-0.4) > 1e-9 {
		t.Fatal("PaperCoverage alias broken")
	}
}

// TestNoMethodAssignsConflictedReviewer is the conflict-of-interest
// guarantee, table-driven over every public method: whatever the algorithm,
// a registered conflict pair must never appear in the output.
func TestNoMethodAssignsConflictedReviewer(t *testing.T) {
	cases := []struct {
		name     string
		seed     int64
		p, r, tp int
		delta    int
		// conflictFrac of all (r, p) pairs become conflicts (feasibility is
		// preserved by skipping pairs that would leave a paper short).
		conflictFrac float64
	}{
		{name: "sparse-conflicts", seed: 21, p: 10, r: 8, tp: 6, delta: 3, conflictFrac: 0.1},
		{name: "dense-conflicts", seed: 22, p: 8, r: 9, tp: 5, delta: 2, conflictFrac: 0.3},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(c.seed))
			papers, reviewers := randomProblem(rng, c.p, c.r, c.tp)
			in := NewInstance(papers, reviewers, c.delta, 0)
			// Register random conflicts, never conflicting a paper below
			// δp+1 available reviewers so every method stays feasible.
			avail := make([]int, c.p)
			for p := range avail {
				avail[p] = c.r
			}
			for p := 0; p < c.p; p++ {
				for r := 0; r < c.r; r++ {
					if rng.Float64() < c.conflictFrac && avail[p] > c.delta+1 {
						in.AddConflict(r, p)
						avail[p]--
					}
				}
			}
			if len(in.Conflicts()) == 0 {
				t.Fatal("test instance has no conflicts; raise conflictFrac")
			}
			for _, m := range Methods() {
				res, err := Assign(in, AssignOptions{Method: m, Omega: 3})
				if err != nil {
					t.Fatalf("%s: %v", m, err)
				}
				for p, g := range res.Assignment.Groups {
					for _, r := range g {
						if in.IsConflict(r, p) {
							t.Errorf("%s assigned conflicted reviewer %d to paper %d", m, r, p)
						}
					}
				}
				if err := in.ValidateAssignment(res.Assignment); err != nil {
					t.Errorf("%s: %v", m, err)
				}
			}
		})
	}
}

// TestAssignContextCancellation: a pre-cancelled context aborts every
// construction method with context.Canceled.
func TestAssignContextCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	papers, reviewers := randomProblem(rng, 12, 8, 6)
	in := NewInstance(papers, reviewers, 3, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, m := range []Method{MethodSDGA, MethodGreedy, MethodBRGG, MethodStableMatching, MethodPairILP} {
		if _, err := AssignContext(ctx, in, AssignOptions{Method: m}); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", m, err)
		}
	}
}

// TestRefineContextAnytime: refinement under an already-expired deadline
// still returns a valid assignment no worse than its input (anytime
// semantics), and the RefinementBudget path remains equivalent.
func TestRefineContextAnytime(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	papers, reviewers := randomProblem(rng, 10, 6, 5)
	in := NewInstance(papers, reviewers, 2, 0)
	base, err := Assign(in, AssignOptions{Method: MethodGreedy})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	refined, err := RefineContext(ctx, in, base.Assignment, AssignOptions{Omega: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.ValidateAssignment(refined); err != nil {
		t.Fatal(err)
	}
	if in.AssignmentScore(refined) < base.Score-1e-9 {
		t.Fatal("cancelled refinement returned a worse assignment")
	}
	// SDGA-SRA under a deadline: refinement stops at the deadline and the
	// result is still valid. (On a heavily loaded runner the deadline can
	// expire during construction, which legitimately errors — accept that.)
	dctx, dcancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer dcancel()
	res, err := AssignContext(dctx, in, AssignOptions{Method: MethodSDGASRA, Omega: 1000, Seed: 7})
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			t.Skip("deadline expired during construction; anytime path not reached")
		}
		t.Fatal(err)
	}
	if err := in.ValidateAssignment(res.Assignment); err != nil {
		t.Fatal(err)
	}
}

// TestAssignTransportSolverOption runs the flow-based methods with both
// transportation solvers: assignments must stay valid and the ARAP optimum —
// solver-independent by construction — must agree to 1e-9.
func TestAssignTransportSolverOption(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	papers, reviewers := randomProblem(rng, 12, 8, 6)
	in := NewInstance(papers, reviewers, 3, 0)
	pairObjective := func(a *Assignment) float64 {
		s := 0.0
		for p := range a.Groups {
			for _, r := range a.Groups[p] {
				s += in.PairScore(r, p)
			}
		}
		return s
	}
	for _, m := range []Method{MethodSDGA, MethodPairILP} {
		var objectives []float64
		for _, tr := range []TransportSolver{TransportDijkstra, TransportLegacy} {
			res, err := Assign(in, AssignOptions{Method: m, Transport: tr})
			if err != nil {
				t.Fatalf("%s/%v: %v", m, tr, err)
			}
			if err := in.ValidateAssignment(res.Assignment); err != nil {
				t.Fatalf("%s/%v produced an invalid assignment: %v", m, tr, err)
			}
			objectives = append(objectives, pairObjective(res.Assignment))
		}
		// The ARAP (pair-additive) optimum is solver-independent; coverage
		// scores may differ across tie-equivalent optima, the pair objective
		// of MethodPairILP may not.
		if m == MethodPairILP && math.Abs(objectives[0]-objectives[1]) > 1e-9 {
			t.Fatalf("%s: solvers disagree: %v vs %v", m, objectives[0], objectives[1])
		}
	}
}
