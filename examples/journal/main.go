// Journal assignment example: an editor needs δp reviewers for a single
// submission, chosen from a large candidate pool. The example generates a
// synthetic pool shaped like the paper's JRA experiments (Section 5.1), finds
// the exact best group with the Branch-and-Bound Algorithm, lists the top-5
// alternative groups, and shows the effect of a conflict of interest.
//
// Run with:
//
//	go run ./examples/journal
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	wgrap "repro"
	"repro/internal/corpus"
)

func main() {
	gen := corpus.NewGenerator(corpus.Config{Scale: 0.1, AuthorsPerArea: 150, Seed: 42})

	// Candidate pool: every generated author with at least 3 publications in
	// 2005-2009, as in Section 5.1 of the paper.
	pool := gen.ReviewerPool(3, 2005, 2009)

	// The submission: a Databases paper from the 2009 simulated conference.
	ds, err := gen.Dataset(corpus.Databases, 2009)
	if err != nil {
		log.Fatal(err)
	}
	paper := ds.Papers[0]

	fmt.Printf("submission: %q\n", paper.Title)
	fmt.Printf("candidate pool: %d reviewers, δp = 3\n\n", len(pool))

	in := wgrap.NewInstance([]wgrap.Paper{paper}, pool, 3, 1)

	// The context-aware entry point: an editor-facing service would attach a
	// request deadline here and the exact search would abort at it.
	ctx := context.Background()
	start := time.Now()
	top, err := wgrap.TopReviewerGroupsContext(ctx, in, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-5 reviewer groups (found in %s):\n", time.Since(start).Round(time.Millisecond))
	for i, g := range top {
		fmt.Printf("  #%d  coverage %.3f  ", i+1, g.Score)
		for _, r := range g.Group {
			fmt.Printf("[%s] ", pool[r].Name)
		}
		fmt.Println()
	}

	// The best group's first reviewer turns out to be a co-author: exclude
	// them and re-solve.
	conflicted := top[0].Group[0]
	in.AddConflict(conflicted, 0)
	best, err := wgrap.AssignJournalContext(ctx, in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter declaring a conflict with %s:\n", pool[conflicted].Name)
	fmt.Printf("  new best group (coverage %.3f): ", best.Score)
	for _, r := range best.Group {
		fmt.Printf("[%s] ", pool[r].Name)
	}
	fmt.Println()
}
