// Conference assignment example: the full pipeline the paper's introduction
// motivates. A synthetic Databases conference (shaped like SIGMOD/VLDB/ICDE/
// PODS 2008 in Table 3) is generated, all six assignment methods of the
// evaluation are run, their quality metrics are compared, and the per-topic
// case study of the most-improved paper is printed.
//
// Run with:
//
//	go run ./examples/conference
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	wgrap "repro"
	"repro/internal/corpus"
	"repro/internal/eval"
)

func main() {
	gen := corpus.NewGenerator(corpus.Config{Scale: 0.15, Seed: 7})
	ds, err := gen.Dataset(corpus.Databases, 2008)
	if err != nil {
		log.Fatal(err)
	}
	in := wgrap.NewInstance(ds.Papers, ds.Reviewers, 3, 0)
	fmt.Printf("simulated conference: %s %d — %d submissions, %d PC members, δp=3, δr=%d\n\n",
		ds.Area, ds.Year, len(ds.Papers), len(ds.Reviewers), in.Workload)

	results := make(map[wgrap.Method]*wgrap.Result)
	fmt.Printf("%-10s %12s %12s %12s %10s\n", "method", "total", "average", "worst paper", "time")
	ctx := context.Background()
	for _, m := range wgrap.Methods() {
		solver, err := wgrap.NewSolver(in, wgrap.WithMethod(m), wgrap.WithSeed(7))
		if err != nil {
			log.Fatal(err)
		}
		res, err := solver.Solve(ctx)
		if err != nil {
			log.Fatal(err)
		}
		results[m] = res
		fmt.Printf("%-10s %12.3f %12.3f %12.3f %10s\n",
			m, res.Score, res.AverageCoverage, res.LowestCoverage, res.Elapsed.Round(time.Millisecond))
	}

	best := results[wgrap.MethodSDGASRA]
	greedy := results[wgrap.MethodGreedy]
	betterOrEqual, ties := wgrap.SuperiorityRatio(in, best.Assignment, greedy.Assignment)
	fmt.Printf("\nSDGA-SRA vs Greedy: %.1f%% of papers served at least as well (%.1f%% ties), %d papers strictly improved\n",
		100*betterOrEqual, 100*ties, eval.ImprovedPapers(in, best.Assignment, greedy.Assignment))
	fmt.Printf("optimality ratio: SDGA-SRA %.1f%%, Greedy %.1f%%\n\n",
		100*wgrap.OptimalityRatio(in, best.Assignment), 100*wgrap.OptimalityRatio(in, greedy.Assignment))

	// Case study (in the spirit of Figures 19-20): the paper where SDGA-SRA
	// improves most over Greedy.
	bestScores := in.PaperScores(best.Assignment)
	greedyScores := in.PaperScores(greedy.Assignment)
	pick := 0
	for p := range bestScores {
		if bestScores[p]-greedyScores[p] > bestScores[pick]-greedyScores[pick] {
			pick = p
		}
	}
	fmt.Println("case study — most improved paper:")
	fmt.Print(eval.NewCaseStudy(in, greedy.Assignment, pick, "Greedy", 5))
	fmt.Print(eval.NewCaseStudy(in, best.Assignment, pick, "SDGA-SRA", 5))
}
