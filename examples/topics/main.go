// Topic-extraction example: the Section 2.4 / Appendix A pipeline. The
// reviewer pool's publication abstracts are fed to the Author-Topic Model
// (collapsed Gibbs sampling); the fitted author-topic rows become the
// reviewer vectors, the per-topic word lists are printed, a new submission's
// abstract is mapped onto the topics with EM (Equation 11), and finally the
// extracted instance is solved with SDGA + stochastic refinement.
//
// Run with:
//
//	go run ./examples/topics
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	wgrap "repro"
	"repro/internal/corpus"
	"repro/internal/topics"
)

func main() {
	// A small world keeps the Gibbs sampler fast enough for a demo.
	gen := corpus.NewGenerator(corpus.Config{
		Scale:          0.05,
		AuthorsPerArea: 40,
		Topics:         9,
		AbstractWords:  60,
		Seed:           11,
	})
	ds, err := gen.Dataset(corpus.DataMining, 2008)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: fit the Author-Topic Model on the PC members' publications.
	tc, err := ds.BuildTopicCorpus(2008)
	if err != nil {
		log.Fatal(err)
	}
	model, err := topics.FitATM(tc, topics.ATMConfig{Topics: 9, Iterations: 120, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted ATM on %d abstracts from %d PC members (%d distinct words)\n\n",
		len(tc.Docs), tc.NumAuthors, tc.Vocab.Size())
	for t := 0; t < 3; t++ {
		fmt.Printf("topic %d: %s\n", t, strings.Join(topics.TopWords(model.TopicWord[t], tc.Vocab, 6), ", "))
	}

	// Step 2: infer a new submission's topic vector from its abstract.
	abstract := ds.PaperPubs[0].Abstract
	vec, err := topics.InferDocument(abstract, tc.Vocab, model.TopicWord, topics.InferConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsubmission %q\n", ds.Papers[0].Title)
	fmt.Printf("inferred topic vector: %v\n", wgrap.Vector(vec))

	// Step 3: build the extracted WGRAP instance (reviewer vectors from the
	// ATM, paper vectors from EM) and assign reviewers.
	in, _, err := ds.ExtractedInstance(3, 0, topics.ATMConfig{Topics: 9, Iterations: 120, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	solver, err := wgrap.NewSolver(in, wgrap.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	res, err := solver.Solve(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nassignment over extracted vectors: average coverage %.3f, worst paper %.3f\n",
		res.AverageCoverage, res.LowestCoverage)
	fmt.Printf("reviewers of the first submission:\n")
	for _, r := range res.Assignment.Groups[0] {
		fmt.Printf("  - %s\n", ds.Reviewers[r].Name)
	}
}
