// Quickstart: build a tiny WGRAP instance by hand and drive it through the
// session lifecycle — a cold solve, an incremental edit (a late conflict of
// interest), and a warm re-solve, with the refinement's anytime progress
// streamed to stdout.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	wgrap "repro"
)

func main() {
	// Three topics: databases, data mining, information retrieval.
	papers := []wgrap.Paper{
		{ID: "p1", Title: "Skyline queries over uncertain data", Topics: wgrap.Vector{0.7, 0.2, 0.1}},
		{ID: "p2", Title: "Mining temporal patterns in click streams", Topics: wgrap.Vector{0.1, 0.7, 0.2}},
		{ID: "p3", Title: "Entity resolution for web search", Topics: wgrap.Vector{0.2, 0.3, 0.5}},
		{ID: "p4", Title: "Adaptive indexing for main-memory databases", Topics: wgrap.Vector{0.9, 0.05, 0.05}},
	}
	reviewers := []wgrap.Reviewer{
		{ID: "r1", Name: "Prof. Query", Topics: wgrap.Vector{0.8, 0.1, 0.1}},
		{ID: "r2", Name: "Dr. Miner", Topics: wgrap.Vector{0.1, 0.8, 0.1}},
		{ID: "r3", Name: "Dr. Search", Topics: wgrap.Vector{0.1, 0.2, 0.7}},
		{ID: "r4", Name: "Prof. Systems", Topics: wgrap.Vector{0.6, 0.2, 0.2}},
	}

	// δp = 2 reviewers per paper; workload 0 selects the minimum balanced
	// reviewer load automatically.
	in := wgrap.NewInstance(papers, reviewers, 2, 0)

	// A long-lived solver session: it owns its hot state across calls, so
	// edits re-solve warm instead of from scratch. The progress callback
	// streams the anytime refinement.
	solver, err := wgrap.NewSolver(in,
		wgrap.WithSeed(1),
		wgrap.WithProgress(func(s wgrap.Snapshot) {
			fmt.Printf("  [%s] round %d: score %.3f (%s)\n", s.Phase, s.Round, s.Score, s.Elapsed.Round(time.Microsecond))
		}),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("cold solve:")
	res, err := solver.Solve(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	printAssignment(in, papers, reviewers, res)

	// Dr. Miner turns out to be a co-author of p2: declare the conflict and
	// re-solve warm. Only the dirtied solver state is rebuilt.
	fmt.Println("\nDr. Miner declares a conflict of interest on p2; warm re-solve:")
	if err := solver.AddConflict(1, 1); err != nil {
		log.Fatal(err)
	}
	res, err = solver.Resolve(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	printAssignment(in, papers, reviewers, res)

	// p3 is withdrawn by its authors; the session drops it from the workload.
	fmt.Println("\np3 is withdrawn; warm re-solve:")
	if err := solver.WithdrawPaper(2); err != nil {
		log.Fatal(err)
	}
	res, err = solver.Resolve(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	printAssignment(in, papers, reviewers, res)
}

func printAssignment(in *wgrap.Instance, papers []wgrap.Paper, reviewers []wgrap.Reviewer, res *wgrap.Result) {
	fmt.Printf("method=%s  total coverage=%.3f  average=%.3f  worst paper=%.3f\n",
		res.Method, res.Score, res.AverageCoverage, res.LowestCoverage)
	for p, paper := range papers {
		group := res.Assignment.Groups[p]
		if len(group) == 0 {
			fmt.Printf("  %-45s (withdrawn)\n", paper.Title)
			continue
		}
		fmt.Printf("  %-45s", paper.Title)
		for _, r := range group {
			fmt.Printf(" [%s]", reviewers[r].Name)
		}
		fmt.Printf("  coverage %.2f\n", in.GroupScore(p, group))
	}
}
