// Quickstart: build a tiny WGRAP instance by hand, assign reviewers with the
// default SDGA + stochastic-refinement pipeline and print the result.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	wgrap "repro"
)

func main() {
	// Three topics: databases, data mining, information retrieval.
	papers := []wgrap.Paper{
		{ID: "p1", Title: "Skyline queries over uncertain data", Topics: wgrap.Vector{0.7, 0.2, 0.1}},
		{ID: "p2", Title: "Mining temporal patterns in click streams", Topics: wgrap.Vector{0.1, 0.7, 0.2}},
		{ID: "p3", Title: "Entity resolution for web search", Topics: wgrap.Vector{0.2, 0.3, 0.5}},
		{ID: "p4", Title: "Adaptive indexing for main-memory databases", Topics: wgrap.Vector{0.9, 0.05, 0.05}},
	}
	reviewers := []wgrap.Reviewer{
		{ID: "r1", Name: "Prof. Query", Topics: wgrap.Vector{0.8, 0.1, 0.1}},
		{ID: "r2", Name: "Dr. Miner", Topics: wgrap.Vector{0.1, 0.8, 0.1}},
		{ID: "r3", Name: "Dr. Search", Topics: wgrap.Vector{0.1, 0.2, 0.7}},
		{ID: "r4", Name: "Prof. Systems", Topics: wgrap.Vector{0.6, 0.2, 0.2}},
	}

	// δp = 2 reviewers per paper; workload 0 selects the minimum balanced
	// reviewer load automatically.
	in := wgrap.NewInstance(papers, reviewers, 2, 0)

	// Dr. Miner is a co-author of p2: register the conflict of interest.
	in.AddConflict(1, 1)

	res, err := wgrap.Assign(in, wgrap.AssignOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("method=%s  total coverage=%.3f  average=%.3f  worst paper=%.3f\n\n",
		res.Method, res.Score, res.AverageCoverage, res.LowestCoverage)
	for p, paper := range papers {
		fmt.Printf("%s\n", paper.Title)
		for _, r := range res.Assignment.Groups[p] {
			fmt.Printf("  - %-15s (individual coverage %.2f)\n", reviewers[r].Name, in.PairScore(r, p))
		}
		fmt.Printf("  group coverage: %.2f\n\n", in.GroupScore(p, res.Assignment.Groups[p]))
	}
}
