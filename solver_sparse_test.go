package wgrap

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// TestSolverCandidateCapFullPool: a candidate cap at (or above) the pool size
// must resolve to the exact dense path and produce bit-identical assignments,
// for both session methods.
func TestSolverCandidateCapFullPool(t *testing.T) {
	for _, m := range []Method{MethodSDGA, MethodSDGASRA} {
		t.Run(string(m), func(t *testing.T) {
			rng := rand.New(rand.NewSource(21))
			papers, reviewers := randomProblem(rng, 30, 24, 10)
			in := NewInstance(papers, reviewers, 3, 0)
			dense, err := NewSolver(in, WithMethod(m), WithOmega(3), WithSeed(9))
			if err != nil {
				t.Fatal(err)
			}
			denseRes, err := dense.Solve(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			capped, err := NewSolver(in, WithMethod(m), WithOmega(3), WithSeed(9),
				WithCandidateCap(len(reviewers)))
			if err != nil {
				t.Fatal(err)
			}
			cappedRes, err := capped.Solve(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(denseRes.Assignment.Sorted(), cappedRes.Assignment.Sorted()) {
				t.Fatal("full-pool candidate cap diverged from the dense assignment")
			}
		})
	}
}

// TestSolverCandidateCapResolveParity: under a candidate cap, warm Resolve
// after each scripted edit must match a cold same-cap Solve on the
// identically edited instance to 1e-9, for both session methods. The
// workload is kept slack so the densification escape hatch never fires —
// warm and cold then walk the identical candidate structure (with a tight
// pool the densified-row sets could legitimately differ between a warm and a
// cold solve, which is why the cap's parity contract is same-cap, not
// vs-dense; the vs-dense gap is the epsilon test below).
func TestSolverCandidateCapResolveParity(t *testing.T) {
	for _, m := range []Method{MethodSDGA, MethodSDGASRA} {
		t.Run(string(m), func(t *testing.T) {
			rng := rand.New(rand.NewSource(31))
			papers, reviewers := randomProblem(rng, 36, 28, 10)
			in := NewInstance(papers, reviewers, 3, 8) // slack workload (min would be 4)
			opts := []Option{WithMethod(m), WithOmega(3), WithSeed(9), WithCandidateCap(10)}
			warm, err := NewSolver(in, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := warm.Solve(context.Background()); err != nil {
				t.Fatal(err)
			}
			editRng := rand.New(rand.NewSource(77))
			for k := 0; k < 9; k++ {
				solverEditScript(t, warm, editRng, k)
				warmRes, err := warm.Resolve(context.Background())
				if err != nil {
					t.Fatalf("edit %d: warm resolve: %v", k, err)
				}
				cold, err := NewSolver(in, opts...)
				if err != nil {
					t.Fatal(err)
				}
				coldRng := rand.New(rand.NewSource(77))
				for j := 0; j <= k; j++ {
					solverEditScript(t, cold, coldRng, j)
				}
				coldRes, err := cold.Solve(context.Background())
				if err != nil {
					t.Fatalf("edit %d: cold solve: %v", k, err)
				}
				if math.Abs(warmRes.Score-coldRes.Score) > 1e-9 {
					t.Fatalf("edit %d: warm score %v != cold score %v", k, warmRes.Score, coldRes.Score)
				}
			}
		})
	}
}

// TestSolverCandidateCapReviewerGrowth: adding reviewers is the one edit that
// changes the candidate universe; the session must rebuild its candidate
// lists (a structural resolve) and still match a cold same-cap solve.
func TestSolverCandidateCapReviewerGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	papers, reviewers := randomProblem(rng, 24, 20, 8)
	in := NewInstance(papers, reviewers, 3, 8)
	opts := []Option{WithMethod(MethodSDGA), WithSeed(9), WithCandidateCap(8)}
	warm, err := NewSolver(in, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Solve(context.Background()); err != nil {
		t.Fatal(err)
	}
	newRev := Reviewer{ID: "late", Topics: randVec(rng, 8)}
	if _, err := warm.AddReviewer(newRev); err != nil {
		t.Fatal(err)
	}
	warmRes, err := warm.Resolve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewSolver(in, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cold.AddReviewer(newRev); err != nil {
		t.Fatal(err)
	}
	coldRes, err := cold.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(warmRes.Score-coldRes.Score) > 1e-9 {
		t.Fatalf("reviewer growth: warm score %v != cold score %v", warmRes.Score, coldRes.Score)
	}
}

// TestSolverCandidateCapPaperScaleEpsilon measures the objective loss of
// candidate pruning at the paper's acceptance scale (P=1000, R=2000, T=40,
// δp=3, k=64) and pins it: the pruned construction must retain at least 96%
// of the dense SDGA objective. The bench instance is deliberately the worst
// case for pruning — near-uniform topic vectors make the topical ranking
// almost pure noise (measured epsilon ~3%); on topically-structured pools the
// loss drops under 1% (see the README's candidate-pruning section). The
// measured epsilon is logged.
func TestSolverCandidateCapPaperScaleEpsilon(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale epsilon skipped in -short mode")
	}
	in := benchConferenceInstance(1000, 2000, 40, 3)
	dense, err := NewSolver(in, WithMethod(MethodSDGA))
	if err != nil {
		t.Fatal(err)
	}
	denseRes, err := dense.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := NewSolver(in, WithMethod(MethodSDGA), WithCandidateCap(64))
	if err != nil {
		t.Fatal(err)
	}
	sparseRes, err := sparse.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	eps := 1 - sparseRes.Score/denseRes.Score
	t.Logf("paper-scale candidate pruning (k=64): dense %.6f sparse %.6f epsilon %.5f (%s vs %s)",
		denseRes.Score, sparseRes.Score, eps, sparseRes.Elapsed, denseRes.Elapsed)
	if sparseRes.Score < 0.96*denseRes.Score {
		t.Fatalf("pruned score %v lost more than 4%% of dense %v", sparseRes.Score, denseRes.Score)
	}
}
