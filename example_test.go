package wgrap_test

import (
	"context"
	"fmt"

	wgrap "repro"
)

// ExampleAssignJournal reproduces the running example of Section 3 of the
// paper: three candidate reviewers, one paper, and a group of two to select.
func ExampleAssignJournal() {
	papers := []wgrap.Paper{{ID: "p", Topics: wgrap.Vector{0.35, 0.45, 0.2}}}
	reviewers := []wgrap.Reviewer{
		{ID: "r1", Topics: wgrap.Vector{0.15, 0.75, 0.1}},
		{ID: "r2", Topics: wgrap.Vector{0.75, 0.15, 0.1}},
		{ID: "r3", Topics: wgrap.Vector{0.1, 0.35, 0.55}},
	}
	in := wgrap.NewInstance(papers, reviewers, 2, 1)
	best, err := wgrap.AssignJournal(in)
	if err != nil {
		panic(err)
	}
	fmt.Printf("best group: %v (coverage %.2f)\n", best.Group, best.Score)
	// Output:
	// best group: [0 1] (coverage 0.90)
}

// ExampleAssign assigns two reviewers to each of three papers with the
// default SDGA + stochastic refinement pipeline.
func ExampleAssign() {
	papers := []wgrap.Paper{
		{ID: "p1", Topics: wgrap.Vector{0.6, 0, 0.4}},
		{ID: "p2", Topics: wgrap.Vector{0.5, 0.5, 0}},
		{ID: "p3", Topics: wgrap.Vector{0.5, 0.5, 0}},
	}
	reviewers := []wgrap.Reviewer{
		{ID: "r1", Topics: wgrap.Vector{0.1, 0.5, 0.4}},
		{ID: "r2", Topics: wgrap.Vector{1, 0, 0}},
		{ID: "r3", Topics: wgrap.Vector{0, 1, 0}},
	}
	in := wgrap.NewInstance(papers, reviewers, 2, 2)
	res, err := wgrap.Assign(in, wgrap.AssignOptions{Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("total coverage %.2f, worst paper %.2f\n", res.Score, res.LowestCoverage)
	// Output:
	// total coverage 2.60, worst paper 0.60
}

// ExampleWeightedCoverage scores a single reviewer against a paper
// (Definition 1).
func ExampleWeightedCoverage() {
	paper := wgrap.Vector{0.6, 0.4}
	reviewer := wgrap.Vector{0.5, 0.5}
	fmt.Printf("%.2f\n", wgrap.WeightedCoverage(reviewer, paper))
	// Output:
	// 0.90
}

// ExampleSolver_ResolveAsync demonstrates concurrent serving: View returns a
// lock-free versioned snapshot that never blocks on a running solve, edits
// coalesce into a pending batch, and ResolveAsync drains the whole batch as
// one warm re-solve in the background, completing a Ticket when the new
// version is published.
func ExampleSolver_ResolveAsync() {
	papers := []wgrap.Paper{
		{ID: "p1", Topics: wgrap.Vector{0.6, 0, 0.4}},
		{ID: "p2", Topics: wgrap.Vector{0.5, 0.5, 0}},
		{ID: "p3", Topics: wgrap.Vector{0.5, 0.5, 0}},
	}
	reviewers := []wgrap.Reviewer{
		{ID: "r1", Topics: wgrap.Vector{0.1, 0.5, 0.4}},
		{ID: "r2", Topics: wgrap.Vector{1, 0, 0}},
		{ID: "r3", Topics: wgrap.Vector{0, 1, 0}},
	}
	in := wgrap.NewInstance(papers, reviewers, 2, 2)
	s, err := wgrap.NewSolver(in, wgrap.WithMethod(wgrap.MethodSDGA), wgrap.WithSeed(1))
	if err != nil {
		panic(err)
	}
	if _, err := s.Solve(context.Background()); err != nil {
		panic(err)
	}

	// Snapshot reads: any goroutine may call View at any time, including
	// while a solve is running; it never takes the solve lock.
	v := s.View()
	fmt.Printf("version %d warm=%v score %.2f\n", v.Version, v.Warm, v.Result.Score)

	// Edits enqueue into the pending batch; ResolveAsync returns a Ticket
	// immediately and drains the batch as one coalesced warm re-solve.
	if err := s.WithdrawPaper(2); err != nil {
		panic(err)
	}
	ticket := s.ResolveAsync()
	res, err := ticket.Wait(context.Background())
	if err != nil {
		panic(err)
	}
	v = s.View()
	fmt.Printf("version %d warm=%v score %.2f (%d coalesced edit(s))\n", ticket.Version(), v.Warm, res.Score, v.Edits)
	// Output:
	// version 1 warm=false score 2.60
	// version 2 warm=true score 2.00 (1 coalesced edit(s))
}
