package wgrap_test

import (
	"fmt"

	wgrap "repro"
)

// ExampleAssignJournal reproduces the running example of Section 3 of the
// paper: three candidate reviewers, one paper, and a group of two to select.
func ExampleAssignJournal() {
	papers := []wgrap.Paper{{ID: "p", Topics: wgrap.Vector{0.35, 0.45, 0.2}}}
	reviewers := []wgrap.Reviewer{
		{ID: "r1", Topics: wgrap.Vector{0.15, 0.75, 0.1}},
		{ID: "r2", Topics: wgrap.Vector{0.75, 0.15, 0.1}},
		{ID: "r3", Topics: wgrap.Vector{0.1, 0.35, 0.55}},
	}
	in := wgrap.NewInstance(papers, reviewers, 2, 1)
	best, err := wgrap.AssignJournal(in)
	if err != nil {
		panic(err)
	}
	fmt.Printf("best group: %v (coverage %.2f)\n", best.Group, best.Score)
	// Output:
	// best group: [0 1] (coverage 0.90)
}

// ExampleAssign assigns two reviewers to each of three papers with the
// default SDGA + stochastic refinement pipeline.
func ExampleAssign() {
	papers := []wgrap.Paper{
		{ID: "p1", Topics: wgrap.Vector{0.6, 0, 0.4}},
		{ID: "p2", Topics: wgrap.Vector{0.5, 0.5, 0}},
		{ID: "p3", Topics: wgrap.Vector{0.5, 0.5, 0}},
	}
	reviewers := []wgrap.Reviewer{
		{ID: "r1", Topics: wgrap.Vector{0.1, 0.5, 0.4}},
		{ID: "r2", Topics: wgrap.Vector{1, 0, 0}},
		{ID: "r3", Topics: wgrap.Vector{0, 1, 0}},
	}
	in := wgrap.NewInstance(papers, reviewers, 2, 2)
	res, err := wgrap.Assign(in, wgrap.AssignOptions{Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("total coverage %.2f, worst paper %.2f\n", res.Score, res.LowestCoverage)
	// Output:
	// total coverage 2.60, worst paper 0.60
}

// ExampleWeightedCoverage scores a single reviewer against a paper
// (Definition 1).
func ExampleWeightedCoverage() {
	paper := wgrap.Vector{0.6, 0.4}
	reviewer := wgrap.Vector{0.5, 0.5}
	fmt.Printf("%.2f\n", wgrap.WeightedCoverage(reviewer, paper))
	// Output:
	// 0.90
}
