package wgrap

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/durable"
)

// durableEditScript applies the k-th scripted edit — cycling through all
// five edit kinds — identically to any solver, durable or not, so journal
// replay can be compared against an in-memory twin.
func durableEditScript(t *testing.T, s *Solver, rng *rand.Rand, k int) {
	t.Helper()
	in := s.Instance()
	P, R := in.NumPapers(), in.NumReviewers()
	switch k % 5 {
	case 0:
		if err := s.AddConflict(rng.Intn(R), rng.Intn(P)); err != nil {
			t.Fatalf("edit %d: %v", k, err)
		}
	case 1:
		if err := s.WithdrawPaper(rng.Intn(P)); err != nil {
			t.Fatalf("edit %d: %v", k, err)
		}
	case 2:
		for p := 0; p < P; p++ {
			if !s.Active(p) {
				if err := s.RestorePaper(p); err != nil {
					t.Fatalf("edit %d: %v", k, err)
				}
			}
		}
	case 3:
		topics := make(Vector, len(in.Reviewers[0].Topics))
		for i := range topics {
			topics[i] = rng.Float64()
		}
		if _, err := s.AddReviewer(Reviewer{ID: "late", HIndex: 7, Topics: topics.Normalized()}); err != nil {
			t.Fatalf("edit %d: %v", k, err)
		}
	case 4:
		if err := s.SetWorkload(in.Workload + 1); err != nil {
			t.Fatalf("edit %d: %v", k, err)
		}
	}
}

// TestDurableRestoreParity is the durability acceptance property: a random
// edit script on a journaled session, Close, RestoreSolver — the restored
// session must report the original Seq and its Resolve must match both the
// original's last result and a cold solve of the identically edited
// in-memory instance to 1e-9.
func TestDurableRestoreParity(t *testing.T) {
	for _, snapEvery := range []int{1000, 4} { // tail-heavy and compaction-heavy
		rng := rand.New(rand.NewSource(77))
		papers, reviewers := randomProblem(rng, 30, 22, 8)
		in := NewInstance(papers, reviewers, 3, 0)
		dir := t.TempDir()
		opts := []Option{WithOmega(3), WithSeed(9), WithFsyncInterval(0), WithSnapshotEvery(snapEvery)}

		s, err := NewSolver(in, append(opts, WithJournalDir(dir))...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Solve(context.Background()); err != nil {
			t.Fatal(err)
		}
		editRng := rand.New(rand.NewSource(31))
		var last *Result
		for k := 0; k < 12; k++ {
			durableEditScript(t, s, editRng, k)
			if k%4 == 3 { // interleave warm re-solves with the edits
				if last, err = s.Resolve(context.Background()); err != nil {
					t.Fatalf("edit %d: %v", k, err)
				}
			}
		}
		if last, err = s.Resolve(context.Background()); err != nil {
			t.Fatal(err)
		}
		seq := s.Seq()
		if seq == 0 {
			t.Fatal("durable session accepted edits but Seq() == 0")
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if err := s.AddConflict(0, 0); err == nil {
			t.Fatal("closed durable solver accepted an edit")
		}

		r, err := RestoreSolver(dir, opts...)
		if err != nil {
			t.Fatalf("snapEvery=%d: %v", snapEvery, err)
		}
		if got := r.Seq(); got != seq {
			t.Fatalf("snapEvery=%d: restored Seq = %d, want %d", snapEvery, got, seq)
		}
		restored, err := r.Resolve(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(restored.Score-last.Score) > 1e-9 {
			t.Fatalf("snapEvery=%d: restored score %v != pre-close score %v", snapEvery, restored.Score, last.Score)
		}

		// Cold in-memory twin of the same edit history.
		cold, err := NewSolver(in, opts[:2]...)
		if err != nil {
			t.Fatal(err)
		}
		coldRng := rand.New(rand.NewSource(31))
		for k := 0; k < 12; k++ {
			durableEditScript(t, cold, coldRng, k)
		}
		coldRes, err := cold.Solve(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(restored.Score-coldRes.Score) > 1e-9 {
			t.Fatalf("snapEvery=%d: restored score %v != cold score %v", snapEvery, restored.Score, coldRes.Score)
		}

		// The restored session keeps journaling: another edit + close +
		// restore round-trips.
		if err := r.WithdrawPaper(0); err != nil {
			t.Fatal(err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		r2, err := RestoreSolver(dir, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if got := r2.Seq(); got != seq+1 {
			t.Fatalf("snapEvery=%d: Seq after restore+edit+restore = %d, want %d", snapEvery, got, seq+1)
		}
		if r2.Active(0) {
			t.Fatal("withdrawal journaled after restore was lost")
		}
		r2.Close()
	}
}

// TestDurableTornTailRecovery chops bytes off the journal (the residue of a
// crash mid-write): RestoreSolver must come back at the surviving prefix's
// sequence and stay consistent with an in-memory twin of that prefix.
func TestDurableTornTailRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	papers, reviewers := randomProblem(rng, 18, 14, 6)
	in := NewInstance(papers, reviewers, 3, 0)
	dir := t.TempDir()
	opts := []Option{WithOmega(3), WithSeed(4), WithFsyncInterval(0)}
	s, err := NewSolver(in, append(opts, WithJournalDir(dir))...)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		if err := s.WithdrawPaper(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	jpath := durable.JournalPath(dir)
	raw, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jpath, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := RestoreSolver(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Seq(); got != 3 {
		t.Fatalf("Seq after torn tail = %d, want the 3-edit prefix", got)
	}
	if !r.Active(3) || r.Active(2) {
		t.Fatal("torn-tail restore replayed the wrong withdrawal prefix")
	}
	if _, err := r.Resolve(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestDurableJournalRefusals covers the misuse surface: creating over
// existing state, restoring from nothing, and journaling an instance whose
// scoring function cannot be named.
func TestDurableJournalRefusals(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	papers, reviewers := randomProblem(rng, 8, 6, 4)
	in := NewInstance(papers, reviewers, 2, 0)
	dir := t.TempDir()
	s, err := NewSolver(in, WithJournalDir(dir), WithFsyncInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := NewSolver(in, WithJournalDir(dir)); !errors.Is(err, ErrJournalExists) {
		t.Fatalf("NewSolver over existing journal: %v, want ErrJournalExists", err)
	}
	if _, err := RestoreSolver(filepath.Join(dir, "nope")); err == nil {
		t.Fatal("RestoreSolver from an empty directory must fail")
	}
	custom := in.Clone()
	custom.Score = func(g, p Vector) float64 { return 1 }
	if _, err := NewSolver(custom, WithJournalDir(t.TempDir())); !errors.Is(err, ErrInvalidInstance) {
		t.Fatalf("durable session with an unnamed score: %v, want ErrInvalidInstance", err)
	}
}

// TestNonDurableCloseIsNoop: Close on an in-memory session leaves it usable.
func TestNonDurableCloseIsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	papers, reviewers := randomProblem(rng, 8, 6, 4)
	s, err := NewSolver(NewInstance(papers, reviewers, 2, 0), WithOmega(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.WithdrawPaper(0); err != nil {
		t.Fatalf("in-memory session unusable after Close: %v", err)
	}
	if _, err := s.Solve(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestDurableGroupCommitWindow exercises the flusher path end to end: a
// positive fsync interval, edits, Sync, restore.
func TestDurableGroupCommitWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	papers, reviewers := randomProblem(rng, 10, 8, 4)
	in := NewInstance(papers, reviewers, 2, 0)
	dir := t.TempDir()
	s, err := NewSolver(in, WithJournalDir(dir), WithFsyncInterval(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WithdrawPaper(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := RestoreSolver(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Active(1) || r.Seq() != 1 {
		t.Fatalf("group-commit session lost its synced edit: seq=%d", r.Seq())
	}
}
